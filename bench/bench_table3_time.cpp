// Table III — per-app analysis time for SAINTDroid, CID and Lint on the 19
// buildable benchmark apps.
//
// Methodology mirrors the paper (§IV-C): static analyses are repeated three
// times and averaged; Lint gets four consecutive runs with the first
// discarded (its build warms caches). Dashes mark tools that fail on an
// app (CID exceeds its analysis budget on the four largest apps; Lint
// crashes on the largest). Expected shape: SAINTDroid fastest on nearly
// every app — up to ~8x and ~4x on average against the baselines — with
// Lint competitive only on the smallest apps.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "adf/repository.hpp"
#include "baselines/cid.hpp"
#include "baselines/lint.hpp"
#include "core/saintdroid.hpp"
#include "support/meter.hpp"
#include "support/stats.hpp"
#include "support/thread_pool.hpp"
#include "workload/benchmarks.hpp"
#include "workload/harness.hpp"

namespace sd = saintdroid;

namespace {

/// Average analysis seconds over `runs` repetitions, skipping `discard`
/// leading runs; negative when the tool fails on the app.
double timed_runs(sd::Analyzer& tool, const sd::Apk& apk, int runs,
                  int discard) {
  double total = 0.0;
  int counted = 0;
  for (int i = 0; i < runs; ++i) {
    const sd::AnalysisResult result = tool.analyze(apk);
    if (!result.completed) return -1.0;
    if (i < discard) continue;
    total += result.usage.seconds;
    ++counted;
  }
  return total / counted;
}

std::string cell(double seconds) {
  if (seconds < 0) return "--";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", seconds * 1000.0);
  return buf;
}

}  // namespace

int main() {
  const auto& repo = sd::FrameworkRepository::standard();
  const auto apps = sd::accuracy_bench(repo);

  // Per-app wall-clock deadline (docs/robustness.md): a stalled analysis
  // degrades to a partial report instead of hanging the bench. Sized to
  // never fire on a healthy host.
  sd::SaintDroidOptions saint_options;
  saint_options.budget.deadline_seconds = 10.0;

  sd::SaintDroid saint{repo, saint_options};
  sd::CidAnalyzer cid{repo};
  sd::LintAnalyzer lint{repo};

  std::printf("Table III: analysis time (milliseconds; average of 3 runs, "
              "Lint: last 3 of 4)\n\n");
  std::printf("%-18s %10s %12s %12s %12s\n", "app", "dex KLOC", "SAINTDroid",
              "CID", "Lint");

  sd::OnlineStats saint_stats;
  std::vector<double> cid_ratios;
  std::vector<double> lint_ratios;

  for (const auto& app : apps) {
    const double t_saint = timed_runs(saint, app.apk, 3, 0);
    const double t_cid = timed_runs(cid, app.apk, 3, 0);
    const double t_lint = timed_runs(lint, app.apk, 4, 1);

    std::printf("%-18s %10.1f %12s %12s %12s\n", app.apk.name.c_str(),
                app.apk.kloc(), cell(t_saint).c_str(), cell(t_cid).c_str(),
                cell(t_lint).c_str());

    saint_stats.add(t_saint * 1000.0);
    if (t_cid > 0) cid_ratios.push_back(t_cid / t_saint);
    if (t_lint > 0) lint_ratios.push_back(t_lint / t_saint);
  }

  const auto summarize = [](const char* name,
                            const std::vector<double>& ratios) {
    if (ratios.empty()) return;
    sd::OnlineStats s;
    for (const double r : ratios) s.add(r);
    std::printf("  vs %-5s  speedup avg %.1fx, max %.1fx (over %zu apps "
                "both tools complete)\n",
                name, s.mean(), s.max(), s.count());
  };

  std::printf("\nSAINTDroid: avg %.2f ms per app (%.2f - %.2f ms)\n",
              saint_stats.mean(), saint_stats.min(), saint_stats.max());
  summarize("CID", cid_ratios);
  summarize("Lint", lint_ratios);
  std::printf("\npaper targets: SAINTDroid up to 8.3x faster, ~4x on "
              "average; CID fails on the 4 largest apps; Lint fastest only "
              "on the smallest apps.\n");

  // Jobs axis: the same 19-app suite through the parallel batch engine,
  // serial vs one worker per hardware thread, with the shared framework
  // substrate on and off. Rows are deterministic per the
  // run_suite_parallel contract on both axes; only wall-clock varies.
  // (bench_rq2_corpus owns BENCH_substrate.json; this table is printed
  // for quick eyeballing on the small suite.)
  const auto db = saint.shared_database();
  const auto make_factory = [&repo, &db,
                             &saint_options](bool shared_substrate) {
    sd::SaintDroidOptions options = saint_options;
    options.shared_substrate = shared_substrate;
    return sd::AnalyzerFactory{[&repo, &db, options] {
      return std::make_unique<sd::SaintDroid>(repo, db, options);
    }};
  };
  const int hw = static_cast<int>(sd::ThreadPool::default_workers());
  std::printf("\nsuite throughput (19 apps, shared ARM database):\n");
  for (const bool shared : {false, true}) {
    const sd::AnalyzerFactory factory = make_factory(shared);
    for (const int jobs : {1, hw}) {
      const sd::Stopwatch watch;
      const sd::SuiteResult suite =
          sd::run_suite_parallel(factory, apps, jobs);
      const double elapsed = watch.seconds();
      std::printf("  substrate=%-3s jobs=%-2d  %.3fs wall  %.1f apps/sec  "
                  "(%d failures)\n",
                  shared ? "on" : "off", jobs, elapsed,
                  elapsed > 0 ? apps.size() / elapsed : 0.0, suite.failures);
      if (jobs == hw && hw == 1) break;  // single-core host: one row says it
    }
  }
  return 0;
}
