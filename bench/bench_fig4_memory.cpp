// Figure 4 — memory footprint during analysis: SAINTDroid (lazy CLVM) vs
// CID (eager whole-world loading) over a real-world sample.
//
// The paper reports SAINTDroid averaging 329 MB (119 MB - 898 MB) against
// CID's 1.3 GB — about 4x — and attributes the gap to incremental class
// loading. Our meter counts bytes *materialized* by each provider, so the
// same mechanism produces the gap here; the target is the ratio, not the
// absolute megabytes.
//
// Pass a sample size as argv[1] (default 400 corpus apps).
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "adf/repository.hpp"
#include "baselines/cid.hpp"
#include "core/saintdroid.hpp"
#include "support/stats.hpp"
#include "workload/corpus.hpp"

namespace sd = saintdroid;

int main(int argc, char** argv) {
  const auto& repo = sd::FrameworkRepository::standard();
  const sd::RealWorldCorpus corpus{repo};
  int sample = 400;
  if (argc > 1) sample = std::atoi(argv[1]);
  sample = std::min(sample, corpus.size());

  sd::SaintDroid saint{repo};
  sd::CidAnalyzer cid{repo};

  sd::OnlineStats saint_kb;
  sd::OnlineStats cid_kb;
  sd::OnlineStats saint_classes;
  sd::OnlineStats cid_classes;
  int cid_failures = 0;

  for (int i = 0; i < sample; ++i) {
    const sd::BenchApp app = corpus.generate(i);
    const sd::AnalysisResult rs = saint.analyze(app.apk);
    const sd::AnalysisResult rc = cid.analyze(app.apk);
    saint_kb.add(static_cast<double>(rs.usage.peak_bytes) / 1024.0);
    saint_classes.add(static_cast<double>(rs.usage.loaded_classes));
    if (!rc.completed) {
      ++cid_failures;
      continue;
    }
    cid_kb.add(static_cast<double>(rc.usage.peak_bytes) / 1024.0);
    cid_classes.add(static_cast<double>(rc.usage.loaded_classes));
  }

  std::printf("Fig. 4: peak materialized memory during analysis "
              "(%d real-world apps)\n\n", sample);
  std::printf("SAINTDroid: avg %8.0f KiB (range %.0f - %.0f), avg %.0f "
              "classes loaded\n",
              saint_kb.mean(), saint_kb.min(), saint_kb.max(),
              saint_classes.mean());
  std::printf("CID:        avg %8.0f KiB (range %.0f - %.0f), avg %.0f "
              "classes loaded%s\n",
              cid_kb.mean(), cid_kb.min(), cid_kb.max(), cid_classes.mean(),
              cid_failures
                  ? (" [" + std::to_string(cid_failures) +
                     " apps too large for CID, excluded]")
                        .c_str()
                  : "");
  if (saint_kb.mean() > 0)
    std::printf("\nratio: CID uses %.1fx the memory of SAINTDroid\n",
                cid_kb.mean() / saint_kb.mean());
  std::printf("\npaper target: ~4x (329 MB vs 1.3 GB on their corpus); the "
              "ratio is the reproduction target, driven by lazy vs eager "
              "class loading.\n");
  return 0;
}
