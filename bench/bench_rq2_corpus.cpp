// RQ2 — real-world applicability: SAINTDroid over the 3,571-app corpus.
//
// Paper targets (§V-B):
//   * 68,268 potential API invocation mismatches; 41.19% of apps with >= 1
//   * 2,115 API callback mismatches in 20.05% of apps
//   * permission groups: 1,815 apps target >= 23, 1,756 target < 23;
//     224 (12.34%) request mismatches in the first group, 1,206 (68.68%)
//     revocation mismatches in the second; 1,430 apps total
//   * sampled precision: API 85%, APC 100%, PRM 100%
//
// The corpus is seeded to those population rates, but every number below
// is *measured* by running the detector — no ledger facts reach the tool.
//
// Pass an app count as argv[1] to subsample (default: full corpus).
//
// After the mismatch-rate study, the corpus doubles as the RQ2 throughput
// workload: the same apps run through run_suite_parallel serially and with
// one worker per hardware thread, and both apps/sec figures are written to
// BENCH_parallel.json so the perf trajectory is tracked per commit. A
// second axis toggles the shared framework substrate on and off over the
// corpus's library-heavy stratum (BENCH_substrate.json), with a
// byte-identity check across jobs {1, 2, 8} and both substrate settings.
//
// The bench is journal-aware: `--journal <file>` runs the corpus suite
// through the crash-safe journal and `--resume` merges an existing
// journal's rows back instead of re-analyzing them, so the full 3,571-app
// study survives preemption (`bench_rq2_corpus 3571 --journal rq2.jsonl
// [--resume]` after a kill picks up where it died). A shard/resume axis
// then proves the multi-process story on the same slice — N shard
// journals merged with merge_journals, and a torn-journal resume, both
// byte-identical to the single-process run — and records the numbers in
// BENCH_shard.json.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "adf/repository.hpp"
#include "core/saintdroid.hpp"
#include "support/meter.hpp"
#include "support/thread_pool.hpp"
#include "workload/corpus.hpp"
#include "workload/ground_truth.hpp"
#include "workload/harness.hpp"
#include "workload/journal.hpp"

namespace sd = saintdroid;

namespace {

/// Canonical byte form of a suite: one journal line per row with the
/// wall-clock field zeroed (timing is the one legitimately nondeterministic
/// field). Two runs are byte-identical iff these strings match.
std::string suite_bytes(const sd::SuiteResult& suite) {
  std::string bytes;
  for (sd::SuiteAppRow row : suite.rows) {
    row.usage.seconds = 0.0;
    bytes += sd::journal_line(row);
    bytes += '\n';
  }
  return bytes;
}

/// Canonical byte form of a row *set*: sorted by app name, seconds zeroed.
/// The comparison currency between a single-process SuiteResult and the
/// app-name-ordered output of merge_journals.
std::string sorted_bytes(std::span<const sd::SuiteAppRow> rows) {
  std::vector<std::string> lines;
  lines.reserve(rows.size());
  for (const auto& row : rows) lines.push_back(sd::canonical_row_bytes(row));
  std::sort(lines.begin(), lines.end());
  std::string bytes;
  for (const auto& line : lines) {
    bytes += line;
    bytes += '\n';
  }
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  const auto& repo = sd::FrameworkRepository::standard();
  const sd::RealWorldCorpus corpus{repo};
  int count = corpus.size();
  std::string journal_path;
  bool resume = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view{argv[i]} == "--journal" && i + 1 < argc)
      journal_path = argv[++i];
    else if (std::string_view{argv[i]} == "--resume")
      resume = true;
    else if (argv[i][0] != '-')
      count = std::min(count, std::atoi(argv[i]));
  }
  if (resume && journal_path.empty()) {
    std::fprintf(stderr, "bench_rq2_corpus: --resume needs --journal\n");
    return 2;
  }

  // Per-app wall-clock deadline so one pathological app degrades to a
  // partial report instead of stalling the whole corpus run (see
  // docs/robustness.md). Generous relative to the ~ms medians: it should
  // never fire on a healthy host, but bounds the worst case.
  sd::SaintDroidOptions tool_options;
  tool_options.budget.deadline_seconds = 10.0;

  sd::SaintDroid tool{repo, tool_options};

  std::uint64_t api_total = 0;
  std::uint64_t apc_total = 0;
  int apps_with_api = 0;
  int apps_with_apc = 0;
  int target_ge23 = 0;
  int target_lt23 = 0;
  int request_apps = 0;
  int revocation_apps = 0;

  sd::Score api_score;
  sd::Score apc_score;
  sd::Score prm_score;
  // The paper hand-checks a 60-app sample; we also track a same-sized
  // sample for the like-for-like precision figure.
  sd::Score sample_api;
  int sampled = 0;

  for (int i = 0; i < count; ++i) {
    const sd::BenchApp app = corpus.generate(i);
    const sd::AnalysisResult result = tool.analyze(app.apk);

    const auto api = result.count(sd::MismatchKind::kApiInvocation);
    const auto apc = result.count(sd::MismatchKind::kApiCallback);
    const auto req = result.count(sd::MismatchKind::kPermissionRequest);
    const auto rev = result.count(sd::MismatchKind::kPermissionRevocation);
    api_total += api;
    apc_total += apc;
    if (api) ++apps_with_api;
    if (apc) ++apps_with_apc;
    if (app.apk.manifest.target_sdk >= 23) {
      ++target_ge23;
      if (req) ++request_apps;
    } else {
      ++target_lt23;
      if (rev) ++revocation_apps;
    }

    api_score += sd::score_detections(app.truth, result.mismatches,
                                      sd::MismatchKind::kApiInvocation);
    apc_score += sd::score_detections(app.truth, result.mismatches,
                                      sd::MismatchKind::kApiCallback);
    prm_score += sd::score_detections(app.truth, result.mismatches,
                                      sd::MismatchKind::kPermissionRequest);
    if (sampled < 60 && !result.mismatches.empty()) {
      sample_api += sd::score_detections(app.truth, result.mismatches,
                                         sd::MismatchKind::kApiInvocation);
      ++sampled;
    }
  }

  const double pct = 100.0 / count;
  std::printf("RQ2: SAINTDroid over %d real-world apps\n\n", count);
  std::printf("API invocation mismatches: %llu total; %d apps (%.2f%%) with "
              ">= 1   [paper: 68,268; 41.19%%]\n",
              static_cast<unsigned long long>(api_total), apps_with_api,
              apps_with_api * pct);
  std::printf("API callback mismatches:   %llu total; %d apps (%.2f%%) with "
              ">= 1   [paper: 2,115; 20.05%%]\n",
              static_cast<unsigned long long>(apc_total), apps_with_apc,
              apps_with_apc * pct);
  std::printf("\npermission groups: %d apps target >= 23, %d target < 23 "
              "[paper: 1,815 / 1,756]\n", target_ge23, target_lt23);
  if (target_ge23)
    std::printf("  request mismatches:    %4d apps (%.2f%% of group) "
                "[paper: 224; 12.34%%]\n",
                request_apps, 100.0 * request_apps / target_ge23);
  if (target_lt23)
    std::printf("  revocation mismatches: %4d apps (%.2f%% of group) "
                "[paper: 1,206; 68.68%%]\n",
                revocation_apps, 100.0 * revocation_apps / target_lt23);
  std::printf("  apps with any permission mismatch: %d [paper: 1,430]\n",
              request_apps + revocation_apps);

  std::printf("\nprecision against the seeded ground truth (full corpus):\n");
  std::printf("  API %.1f%%   APC %.1f%%   PRM %.1f%%   "
              "[paper, 60-app sample: 85%% / 100%% / 100%%]\n",
              100.0 * api_score.precision(), 100.0 * apc_score.precision(),
              100.0 * prm_score.precision());
  std::printf("  (60-app sample, paper methodology: API precision %.1f%%)\n",
              100.0 * sample_api.precision());
  std::printf("  recall for reference (ground truth known here, unlike the "
              "paper): API %.1f%%, APC %.1f%%, PRM %.1f%%\n",
              100.0 * api_score.recall(), 100.0 * apc_score.recall(),
              100.0 * prm_score.recall());

  // --- throughput: serial vs parallel over the same corpus slice ---------
  // App generation is excluded from timing (it is harness, not analysis);
  // a 400-app slice keeps the default full-corpus run affordable while
  // argv[1] subsamples both studies consistently.
  const int suite_count = std::min(count, 400);
  std::vector<sd::BenchApp> suite_apps;
  suite_apps.reserve(static_cast<std::size_t>(suite_count));
  for (int i = 0; i < suite_count; ++i)
    suite_apps.push_back(corpus.generate(i));

  const auto db = tool.shared_database();
  const auto make_factory = [&repo, &db,
                             &tool_options](bool shared_substrate) {
    sd::SaintDroidOptions options = tool_options;
    options.shared_substrate = shared_substrate;
    return sd::AnalyzerFactory{[&repo, &db, options] {
      return std::make_unique<sd::SaintDroid>(repo, db, options);
    }};
  };
  const sd::AnalyzerFactory factory = make_factory(true);
  const int hw = static_cast<int>(sd::ThreadPool::default_workers());

  const auto timed_suite = [&](const sd::AnalyzerFactory& f,
                               const std::vector<sd::BenchApp>& apps,
                               int jobs, double& wall) {
    const sd::Stopwatch watch;
    sd::SuiteResult suite = sd::run_suite_parallel(f, apps, jobs);
    wall = watch.seconds();
    return suite;
  };
  const auto throughput = [&](int jobs) {
    double wall = 0.0;
    (void)timed_suite(factory, suite_apps, jobs, wall);
    return wall > 0 ? suite_count / wall : 0.0;
  };

  const double serial_aps = throughput(1);
  const double parallel_aps = hw > 1 ? throughput(hw) : serial_aps;
  std::printf("\nthroughput over %d corpus apps (shared ARM database):\n"
              "  serial        %8.1f apps/sec\n"
              "  jobs=%-2d       %8.1f apps/sec  (%.2fx)\n",
              suite_count, serial_aps, hw, parallel_aps,
              serial_aps > 0 ? parallel_aps / serial_aps : 0.0);

  if (std::FILE* out = std::fopen("BENCH_parallel.json", "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"rq2_corpus_throughput\",\n"
                 "  \"apps\": %d,\n"
                 "  \"hardware_concurrency\": %d,\n"
                 "  \"effective_jobs\": %d,\n"
                 "  \"serial_apps_per_sec\": %.2f,\n"
                 "  \"parallel_apps_per_sec\": %.2f,\n"
                 "  \"speedup\": %.3f\n"
                 "}\n",
                 suite_count, hw, hw, serial_aps, parallel_aps,
                 serial_aps > 0 ? parallel_aps / serial_aps : 0.0);
    std::fclose(out);
    std::printf("  -> BENCH_parallel.json\n");
  }

  // --- substrate axis: shared framework substrate on vs off -------------
  // Measured on the library-heavy stratum of the corpus (the Fig. 3
  // outliers: library_heavy_fraction of the population, apps whose
  // defining trait is touching hundreds of distinct framework classes).
  // That is the regime the substrate exists for — the unshared
  // configuration re-materializes every touched framework class per
  // analyzer, the shared one reads the per-level substrate built once per
  // process. Both settings run the identical slice at jobs=8, and rows
  // must be byte-identical across both settings and across jobs {1, 2, 8}
  // — the substrate is a pure caching layer, invisible in every reported
  // field.
  sd::CorpusConfig heavy_config = corpus.config();
  heavy_config.library_heavy_fraction = 1.0;
  const sd::RealWorldCorpus heavy_corpus{repo, heavy_config};
  const std::vector<sd::BenchApp> heavy_apps =
      heavy_corpus.generate_range(0, suite_count, hw);
  const sd::AnalyzerFactory unshared_factory = make_factory(false);

  double unshared_wall = 0.0;
  const sd::SuiteResult unshared_suite =
      timed_suite(unshared_factory, heavy_apps, 8, unshared_wall);

  // Warm every substrate level outside the timed region: the steady-state
  // cost of the shared configuration is what a long-running batch pays,
  // not the one-off builds.
  {
    std::vector<char> warmed(sd::kMaxApiLevel + 1, 0);
    for (const auto& app : heavy_apps) {
      const int level =
          sd::FrameworkRepository::clamp_level(app.apk.manifest.target_sdk);
      if (warmed[static_cast<std::size_t>(level)]) continue;
      warmed[static_cast<std::size_t>(level)] = 1;
      (void)repo.substrate(level);
    }
  }
  double shared_wall = 0.0;
  const sd::SuiteResult shared_suite =
      timed_suite(factory, heavy_apps, 8, shared_wall);

  const std::string reference = suite_bytes(shared_suite);
  bool deterministic = suite_bytes(unshared_suite) == reference;
  for (const int jobs : {1, 2, 8}) {
    double wall = 0.0;
    deterministic =
        deterministic &&
        suite_bytes(timed_suite(factory, heavy_apps, jobs, wall)) ==
            reference &&
        suite_bytes(timed_suite(unshared_factory, heavy_apps, jobs, wall)) ==
            reference;
  }

  const double ratio =
      unshared_wall > 0 ? shared_wall / unshared_wall : 0.0;
  std::printf("\nsubstrate axis over %d library-heavy corpus apps "
              "(jobs=8):\n"
              "  unshared  %8.3fs wall\n"
              "  shared    %8.3fs wall  (%.3fx of unshared)\n"
              "  byte-identical rows across jobs {1,2,8} x {shared,unshared}:"
              " %s\n",
              suite_count, unshared_wall, shared_wall, ratio,
              deterministic ? "yes" : "NO");

  if (std::FILE* out = std::fopen("BENCH_substrate.json", "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"rq2_substrate_axis\",\n"
                 "  \"slice\": \"library_heavy\",\n"
                 "  \"apps\": %d,\n"
                 "  \"jobs\": 8,\n"
                 "  \"effective_jobs\": 8,\n"
                 "  \"unshared_wall_seconds\": %.4f,\n"
                 "  \"shared_wall_seconds\": %.4f,\n"
                 "  \"shared_over_unshared\": %.4f,\n"
                 "  \"deterministic_across_jobs_and_sharing\": %s\n"
                 "}\n",
                 suite_count, unshared_wall, shared_wall, ratio,
                 deterministic ? "true" : "false");
    std::fclose(out);
    std::printf("  -> BENCH_substrate.json\n");
  }

  // --- journal pass-through: the resumable full-corpus study -------------
  // With --journal the whole count-app suite runs through the crash-safe
  // journal: a killed run re-invoked with --resume merges every journaled
  // row back and analyzes only the remainder, so the full 3,571-app study
  // survives preemption at the cost of re-running only the in-flight apps.
  if (!journal_path.empty()) {
    const std::vector<sd::BenchApp> all_apps =
        count == suite_count ? suite_apps
                             : corpus.generate_range(0, count, hw);
    sd::SuiteRunOptions journal_options;
    journal_options.jobs = hw;
    journal_options.journal_path = journal_path;
    journal_options.resume = resume;
    journal_options.corpus_id = sd::corpus_fingerprint(all_apps);
    const sd::Stopwatch watch;
    const sd::SuiteResult suite =
        sd::run_suite_parallel(factory, all_apps, journal_options);
    std::printf("\njournaled corpus suite -> %s: %zu apps, %zu resumed "
                "from journal, %zu analyzed, %.2fs\n",
                journal_path.c_str(), suite.rows.size(), suite.resumed_rows,
                suite.rows.size() - suite.resumed_rows, watch.seconds());
  }

  // --- shard/resume axis: multi-process equivalence ----------------------
  // The multi-host fan-out story over the same slice: (a) three shard
  // journals merged with merge_journals, (b) a run killed mid-append
  // (torn trailing row) and resumed — both must reproduce the
  // single-process suite byte-for-byte (app-name order, seconds zeroed).
  const std::string corpus_id = sd::corpus_fingerprint(suite_apps);
  double reference_wall = 0.0;
  const sd::SuiteResult single_process =
      timed_suite(factory, suite_apps, hw, reference_wall);
  const std::string reference_bytes = sorted_bytes(single_process.rows);

  const int shard_count = 3;
  std::vector<std::string> shard_files;
  std::vector<double> shard_walls;        // per-shard makespans: the static
  std::vector<std::size_t> shard_apps;    // partition's straggler profile
  double shard_wall_max = 0.0;  // a multi-host run costs its slowest shard
  for (int s = 0; s < shard_count; ++s) {
    const std::string file = "rq2_shard" + std::to_string(s) + ".jsonl";
    const std::vector<sd::BenchApp> slice =
        sd::shard_slice(suite_apps, s, shard_count);
    sd::SuiteRunOptions options;
    options.jobs = hw;
    options.journal_path = file;
    options.corpus_id = corpus_id;
    options.shard_index = s;
    options.shard_count = shard_count;
    const sd::Stopwatch watch;
    (void)sd::run_suite_parallel(factory, slice, options);
    shard_walls.push_back(watch.seconds());
    shard_apps.push_back(slice.size());
    shard_wall_max = std::max(shard_wall_max, shard_walls.back());
    shard_files.push_back(file);
  }
  const sd::JournalMerge merged = sd::merge_journals(shard_files);
  const bool shard_identical =
      merged.clean() && sorted_bytes(merged.rows) == reference_bytes;

  // Kill-and-resume: journal the first half, tear the trailing row the way
  // a mid-append kill does, then resume over the full slice.
  const std::string resume_file = "rq2_resume.jsonl";
  const std::size_t first_leg = static_cast<std::size_t>(suite_count) / 2;
  {
    const std::vector<sd::BenchApp> head{
        suite_apps.begin(),
        suite_apps.begin() + static_cast<std::ptrdiff_t>(first_leg)};
    sd::SuiteRunOptions options;
    options.jobs = hw;
    options.journal_path = resume_file;
    options.corpus_id = corpus_id;
    (void)sd::run_suite_parallel(factory, head, options);
  }
  {
    std::vector<std::string> lines;
    std::ifstream in{resume_file};
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    in.close();
    std::ofstream out{resume_file, std::ios::trunc};
    for (std::size_t i = 0; i + 1 < lines.size(); ++i) out << lines[i] << "\n";
    out << lines.back().substr(0, lines.back().size() / 2);  // torn row
  }
  sd::SuiteRunOptions resume_options;
  resume_options.jobs = hw;
  resume_options.journal_path = resume_file;
  resume_options.resume = true;
  resume_options.corpus_id = corpus_id;
  const sd::Stopwatch resume_watch;
  const sd::SuiteResult resumed =
      sd::run_suite_parallel(factory, suite_apps, resume_options);
  const double resume_wall = resume_watch.seconds();
  const bool resume_identical = sorted_bytes(resumed.rows) == reference_bytes;
  // The torn row is the only journaled app that must be re-analyzed.
  const bool resume_skipped_completed = resumed.resumed_rows == first_leg - 1;

  std::printf("\nshard/resume axis over %d corpus apps (jobs=%d):\n"
              "  single process  %8.3fs wall\n"
              "  %d shards        %8.3fs wall (slowest shard), merged: "
              "%zu apps, %zu dups, %zu conflicts\n"
              "  merged == single process: %s\n"
              "  kill+resume: %zu rows resumed, %zu re-analyzed, %.3fs, "
              "identical: %s\n",
              suite_count, hw, reference_wall, shard_count, shard_wall_max,
              merged.rows.size(), merged.duplicates, merged.conflicts.size(),
              shard_identical ? "yes" : "NO", resumed.resumed_rows,
              resumed.rows.size() - resumed.resumed_rows, resume_wall,
              resume_identical && resume_skipped_completed ? "yes" : "NO");

  if (std::FILE* out = std::fopen("BENCH_shard.json", "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"rq2_shard_resume\",\n"
                 "  \"apps\": %d,\n"
                 "  \"jobs\": %d,\n"
                 "  \"effective_jobs\": %d,\n"
                 "  \"shards\": %d,\n"
                 "  \"single_process_wall_seconds\": %.4f,\n"
                 "  \"slowest_shard_wall_seconds\": %.4f,\n"
                 "  \"merge_duplicates\": %zu,\n"
                 "  \"merge_conflicts\": %zu,\n"
                 "  \"shard_merge_identical\": %s,\n"
                 "  \"resume_resumed_rows\": %zu,\n"
                 "  \"resume_reanalyzed_rows\": %zu,\n"
                 "  \"resume_wall_seconds\": %.4f,\n"
                 "  \"resume_identical\": %s,\n"
                 "  \"shard_makespans\": [\n",
                 suite_count, hw, hw, shard_count, reference_wall,
                 shard_wall_max, merged.duplicates, merged.conflicts.size(),
                 shard_identical ? "true" : "false", resumed.resumed_rows,
                 resumed.rows.size() - resumed.resumed_rows, resume_wall,
                 resume_identical && resume_skipped_completed ? "true"
                                                              : "false");
    for (int s = 0; s < shard_count; ++s)
      std::fprintf(out,
                   "    {\"shard\": %d, \"apps\": %zu, "
                   "\"wall_seconds\": %.4f}%s\n",
                   s, shard_apps[static_cast<std::size_t>(s)],
                   shard_walls[static_cast<std::size_t>(s)],
                   s + 1 < shard_count ? "," : "");
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("  -> BENCH_shard.json\n");
  }
  return deterministic && shard_identical && resume_identical &&
                 resume_skipped_completed
             ? 0
             : 1;
}
