// RQ2 — real-world applicability: SAINTDroid over the 3,571-app corpus.
//
// Paper targets (§V-B):
//   * 68,268 potential API invocation mismatches; 41.19% of apps with >= 1
//   * 2,115 API callback mismatches in 20.05% of apps
//   * permission groups: 1,815 apps target >= 23, 1,756 target < 23;
//     224 (12.34%) request mismatches in the first group, 1,206 (68.68%)
//     revocation mismatches in the second; 1,430 apps total
//   * sampled precision: API 85%, APC 100%, PRM 100%
//
// The corpus is seeded to those population rates, but every number below
// is *measured* by running the detector — no ledger facts reach the tool.
//
// Pass an app count as argv[1] to subsample (default: full corpus).
//
// After the mismatch-rate study, the corpus doubles as the RQ2 throughput
// workload: the same apps run through run_suite_parallel serially and with
// one worker per hardware thread, and both apps/sec figures are written to
// BENCH_parallel.json so the perf trajectory is tracked per commit.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "adf/repository.hpp"
#include "core/saintdroid.hpp"
#include "support/meter.hpp"
#include "support/thread_pool.hpp"
#include "workload/corpus.hpp"
#include "workload/ground_truth.hpp"
#include "workload/harness.hpp"

namespace sd = saintdroid;

int main(int argc, char** argv) {
  const auto& repo = sd::FrameworkRepository::standard();
  const sd::RealWorldCorpus corpus{repo};
  int count = corpus.size();
  if (argc > 1) count = std::min(count, std::atoi(argv[1]));

  sd::SaintDroid tool{repo};

  std::uint64_t api_total = 0;
  std::uint64_t apc_total = 0;
  int apps_with_api = 0;
  int apps_with_apc = 0;
  int target_ge23 = 0;
  int target_lt23 = 0;
  int request_apps = 0;
  int revocation_apps = 0;

  sd::Score api_score;
  sd::Score apc_score;
  sd::Score prm_score;
  // The paper hand-checks a 60-app sample; we also track a same-sized
  // sample for the like-for-like precision figure.
  sd::Score sample_api;
  int sampled = 0;

  for (int i = 0; i < count; ++i) {
    const sd::BenchApp app = corpus.generate(i);
    const sd::AnalysisResult result = tool.analyze(app.apk);

    const auto api = result.count(sd::MismatchKind::kApiInvocation);
    const auto apc = result.count(sd::MismatchKind::kApiCallback);
    const auto req = result.count(sd::MismatchKind::kPermissionRequest);
    const auto rev = result.count(sd::MismatchKind::kPermissionRevocation);
    api_total += api;
    apc_total += apc;
    if (api) ++apps_with_api;
    if (apc) ++apps_with_apc;
    if (app.apk.manifest.target_sdk >= 23) {
      ++target_ge23;
      if (req) ++request_apps;
    } else {
      ++target_lt23;
      if (rev) ++revocation_apps;
    }

    api_score += sd::score_detections(app.truth, result.mismatches,
                                      sd::MismatchKind::kApiInvocation);
    apc_score += sd::score_detections(app.truth, result.mismatches,
                                      sd::MismatchKind::kApiCallback);
    prm_score += sd::score_detections(app.truth, result.mismatches,
                                      sd::MismatchKind::kPermissionRequest);
    if (sampled < 60 && !result.mismatches.empty()) {
      sample_api += sd::score_detections(app.truth, result.mismatches,
                                         sd::MismatchKind::kApiInvocation);
      ++sampled;
    }
  }

  const double pct = 100.0 / count;
  std::printf("RQ2: SAINTDroid over %d real-world apps\n\n", count);
  std::printf("API invocation mismatches: %llu total; %d apps (%.2f%%) with "
              ">= 1   [paper: 68,268; 41.19%%]\n",
              static_cast<unsigned long long>(api_total), apps_with_api,
              apps_with_api * pct);
  std::printf("API callback mismatches:   %llu total; %d apps (%.2f%%) with "
              ">= 1   [paper: 2,115; 20.05%%]\n",
              static_cast<unsigned long long>(apc_total), apps_with_apc,
              apps_with_apc * pct);
  std::printf("\npermission groups: %d apps target >= 23, %d target < 23 "
              "[paper: 1,815 / 1,756]\n", target_ge23, target_lt23);
  if (target_ge23)
    std::printf("  request mismatches:    %4d apps (%.2f%% of group) "
                "[paper: 224; 12.34%%]\n",
                request_apps, 100.0 * request_apps / target_ge23);
  if (target_lt23)
    std::printf("  revocation mismatches: %4d apps (%.2f%% of group) "
                "[paper: 1,206; 68.68%%]\n",
                revocation_apps, 100.0 * revocation_apps / target_lt23);
  std::printf("  apps with any permission mismatch: %d [paper: 1,430]\n",
              request_apps + revocation_apps);

  std::printf("\nprecision against the seeded ground truth (full corpus):\n");
  std::printf("  API %.1f%%   APC %.1f%%   PRM %.1f%%   "
              "[paper, 60-app sample: 85%% / 100%% / 100%%]\n",
              100.0 * api_score.precision(), 100.0 * apc_score.precision(),
              100.0 * prm_score.precision());
  std::printf("  (60-app sample, paper methodology: API precision %.1f%%)\n",
              100.0 * sample_api.precision());
  std::printf("  recall for reference (ground truth known here, unlike the "
              "paper): API %.1f%%, APC %.1f%%, PRM %.1f%%\n",
              100.0 * api_score.recall(), 100.0 * apc_score.recall(),
              100.0 * prm_score.recall());

  // --- throughput: serial vs parallel over the same corpus slice ---------
  // App generation is excluded from timing (it is harness, not analysis);
  // a 400-app slice keeps the default full-corpus run affordable while
  // argv[1] subsamples both studies consistently.
  const int suite_count = std::min(count, 400);
  std::vector<sd::BenchApp> suite_apps;
  suite_apps.reserve(static_cast<std::size_t>(suite_count));
  for (int i = 0; i < suite_count; ++i)
    suite_apps.push_back(corpus.generate(i));

  const auto db = tool.shared_database();
  const sd::AnalyzerFactory factory = [&repo, &db] {
    return std::make_unique<sd::SaintDroid>(repo, db);
  };
  const int hw = static_cast<int>(sd::ThreadPool::default_workers());

  const auto throughput = [&](int jobs) {
    const sd::Stopwatch watch;
    const sd::SuiteResult suite =
        sd::run_suite_parallel(factory, suite_apps, jobs);
    const double elapsed = watch.seconds();
    (void)suite;
    return elapsed > 0 ? suite_count / elapsed : 0.0;
  };

  const double serial_aps = throughput(1);
  const double parallel_aps = hw > 1 ? throughput(hw) : serial_aps;
  std::printf("\nthroughput over %d corpus apps (shared ARM database):\n"
              "  serial        %8.1f apps/sec\n"
              "  jobs=%-2d       %8.1f apps/sec  (%.2fx)\n",
              suite_count, serial_aps, hw, parallel_aps,
              serial_aps > 0 ? parallel_aps / serial_aps : 0.0);

  if (std::FILE* out = std::fopen("BENCH_parallel.json", "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"rq2_corpus_throughput\",\n"
                 "  \"apps\": %d,\n"
                 "  \"hardware_concurrency\": %d,\n"
                 "  \"serial_apps_per_sec\": %.2f,\n"
                 "  \"parallel_apps_per_sec\": %.2f,\n"
                 "  \"speedup\": %.3f\n"
                 "}\n",
                 suite_count, hw, serial_aps, parallel_aps,
                 serial_aps > 0 ? parallel_aps / serial_aps : 0.0);
    std::fclose(out);
    std::printf("  -> BENCH_parallel.json\n");
  }
  return 0;
}
