// Cold- vs warm-start benchmark for the on-disk model cache.
//
// Simulates two consecutive process starts sharing one `--model-cache`
// directory: the first (cold) finds it empty, so it mines the ApiDatabase
// and derives every level's substrate from instruction streams, publishing
// both; the second (warm) must skip the mining pass entirely — database
// served from cache, every substrate rebound from its persisted tables.
// Per-level substrate timings and the full-repo model-phase totals go to
// BENCH_coldstart.json; the run fails unless the warm start actually
// skipped mining (served_from_cache, zero stores, one hit per level) and
// its model-phase time is strictly below the cold start's.
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "adf/repository.hpp"
#include "core/model_cache.hpp"
#include "support/meter.hpp"
#include "support/thread_pool.hpp"

namespace sd = saintdroid;

namespace {

struct PhaseResult {
  bool db_from_cache = false;
  double db_seconds = 0.0;
  std::vector<double> level_seconds;  // one per modelled level, in order
  double substrate_seconds = 0.0;
  double total_seconds = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_stores = 0;
};

/// One process start: a fresh repository (per-process state) pointed at the
/// shared cache directory, timing the whole model phase — database
/// acquisition plus one substrate per modelled level.
PhaseResult run_phase(const std::string& cache_dir, int jobs) {
  PhaseResult r;
  const sd::FrameworkRepository repo{};
  const sd::ModelCache cache{cache_dir};
  cache.attach_substrate_cache(repo);

  const sd::Stopwatch total;
  {
    const sd::Stopwatch watch;
    (void)cache.api_database(repo, jobs, &r.db_from_cache);
    r.db_seconds = watch.seconds();
  }
  // Emit every level image before timing the substrates: the cold phase
  // already built them all as a side effect of mining, so without this the
  // warm per-level numbers would charge image emission to the rebind and
  // the comparison would not be build-vs-rebind. (total_seconds still
  // covers the whole phase, emission included.)
  for (int level = sd::kMinApiLevel; level <= sd::kMaxApiLevel; ++level)
    (void)repo.image(level);
  for (int level = sd::kMinApiLevel; level <= sd::kMaxApiLevel; ++level) {
    const sd::Stopwatch watch;
    (void)repo.substrate(level);
    const double seconds = watch.seconds();
    r.level_seconds.push_back(seconds);
    r.substrate_seconds += seconds;
  }
  r.total_seconds = total.seconds();
  r.cache_hits = repo.substrate_cache_hits();
  r.cache_stores = repo.substrate_cache_stores();
  return r;
}

}  // namespace

int main() {
  const int jobs = static_cast<int>(sd::ThreadPool::default_workers());
  const int levels = sd::kMaxApiLevel - sd::kMinApiLevel + 1;
  const std::string cache_dir = "BENCH_coldstart.cache";
  std::filesystem::remove_all(cache_dir);

  std::printf("cold start (empty cache, %d jobs)...\n", jobs);
  const PhaseResult cold = run_phase(cache_dir, jobs);
  std::printf("warm start (populated cache)...\n");
  const PhaseResult warm = run_phase(cache_dir, jobs);
  std::filesystem::remove_all(cache_dir);

  std::printf("\n%-8s %12s %12s\n", "level", "cold ms", "warm ms");
  for (int i = 0; i < levels; ++i)
    std::printf("%-8d %12.2f %12.2f\n", sd::kMinApiLevel + i,
                1000.0 * cold.level_seconds[static_cast<std::size_t>(i)],
                1000.0 * warm.level_seconds[static_cast<std::size_t>(i)]);
  std::printf("%-8s %12.2f %12.2f  (database: %.2f vs %.2f)\n", "total",
              1000.0 * cold.total_seconds, 1000.0 * warm.total_seconds,
              1000.0 * cold.db_seconds, 1000.0 * warm.db_seconds);
  std::printf("cold: mined db, %llu stores; warm: %s, %llu hits, "
              "%llu stores; speedup %.2fx\n",
              static_cast<unsigned long long>(cold.cache_stores),
              warm.db_from_cache ? "db from cache" : "DB RE-MINED",
              static_cast<unsigned long long>(warm.cache_hits),
              static_cast<unsigned long long>(warm.cache_stores),
              warm.total_seconds > 0
                  ? cold.total_seconds / warm.total_seconds
                  : 0.0);

  // The acceptance gate: the warm process skipped mining entirely and its
  // model phase is strictly faster than the cold one's.
  const bool skipped_mining = !cold.db_from_cache && warm.db_from_cache &&
                              warm.cache_stores == 0 &&
                              warm.cache_hits ==
                                  static_cast<std::uint64_t>(levels);
  const bool faster = warm.total_seconds < cold.total_seconds;

  if (std::FILE* out = std::fopen("BENCH_coldstart.json", "w")) {
    const auto phase_json = [out](const char* name, const PhaseResult& r) {
      std::fprintf(out,
                   "  \"%s\": {\n"
                   "    \"db_from_cache\": %s,\n"
                   "    \"db_seconds\": %.4f,\n"
                   "    \"substrate_seconds\": %.4f,\n"
                   "    \"total_seconds\": %.4f,\n"
                   "    \"cache_hits\": %llu,\n"
                   "    \"cache_stores\": %llu,\n"
                   "    \"level_seconds\": [",
                   name, r.db_from_cache ? "true" : "false", r.db_seconds,
                   r.substrate_seconds, r.total_seconds,
                   static_cast<unsigned long long>(r.cache_hits),
                   static_cast<unsigned long long>(r.cache_stores));
      for (std::size_t i = 0; i < r.level_seconds.size(); ++i)
        std::fprintf(out, "%s%.4f", i == 0 ? "" : ", ", r.level_seconds[i]);
      std::fprintf(out, "]\n  }");
    };
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"model_cache_coldstart\",\n"
                 "  \"jobs\": %d,\n"
                 "  \"effective_jobs\": %d,\n"
                 "  \"hardware_concurrency\": %d,\n"
                 "  \"levels\": %d,\n"
                 "  \"warm_skipped_mining\": %s,\n"
                 "  \"warm_strictly_faster\": %s,\n"
                 "  \"speedup\": %.2f,\n",
                 jobs, jobs, jobs, levels, skipped_mining ? "true" : "false",
                 faster ? "true" : "false",
                 warm.total_seconds > 0
                     ? cold.total_seconds / warm.total_seconds
                     : 0.0);
    phase_json("cold", cold);
    std::fprintf(out, ",\n");
    phase_json("warm", warm);
    std::fprintf(out, "\n}\n");
    std::fclose(out);
    std::printf("-> BENCH_coldstart.json\n");
  }

  if (!skipped_mining) {
    std::fprintf(stderr, "WARM START DID NOT SKIP MINING\n");
    return 1;
  }
  if (!faster) {
    std::fprintf(stderr, "WARM START NOT FASTER THAN COLD\n");
    return 1;
  }
  return 0;
}
