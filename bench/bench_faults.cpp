// Robustness benchmark: batch throughput under injected per-app faults.
//
// A fault-tolerant batch engine must degrade linearly: killing X% of the
// apps in a corpus run should remove ~X% of the work, never add any —
// no retries, no poisoned workers, no serialized error paths. This bench
// runs the same corpus slice at 0%, 5% and 20% injected failure rates
// (deterministic victim sets, planned via the fault substrate) and writes
// the measured throughput plus the failure accounting to BENCH_faults.json
// so the no-retry-blowup property is tracked per commit.
//
// Pass an app count as argv[1] to resize the slice (default 200).
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "adf/repository.hpp"
#include "core/saintdroid.hpp"
#include "support/faults.hpp"
#include "support/meter.hpp"
#include "support/thread_pool.hpp"
#include "workload/corpus.hpp"
#include "workload/harness.hpp"

namespace sd = saintdroid;

int main(int argc, char** argv) {
  int count = 200;
  if (argc > 1) count = std::atoi(argv[1]);
  if (count < 10) count = 10;

  const auto& repo = sd::FrameworkRepository::standard();
  const sd::RealWorldCorpus corpus{repo};
  const int hw = static_cast<int>(sd::ThreadPool::default_workers());

  std::printf("generating %d corpus apps (%d workers)...\n", count, hw);
  const std::vector<sd::BenchApp> apps = corpus.generate_range(0, count, hw);

  sd::SaintDroid miner{repo};
  const auto db = miner.shared_database();
  const sd::AnalyzerFactory factory = [&repo, &db] {
    return std::make_unique<sd::SaintDroid>(repo, db);
  };

  struct RateResult {
    double rate = 0.0;
    int planned = 0;
    int observed_failures = 0;
    double seconds = 0.0;
    double apps_per_sec = 0.0;
  };
  std::vector<RateResult> results;

  for (const double rate : {0.0, 0.05, 0.20}) {
    RateResult r;
    r.rate = rate;
    r.planned = static_cast<int>(rate * count + 0.5);

    // Deterministic, evenly spread victim set: the same apps die on every
    // run and at every worker count.
    sd::FaultPlan plan;
    for (int j = 0; j < r.planned; ++j) {
      const int victim = j * count / r.planned;
      plan.faults.push_back({"clvm.materialize",
                             apps[static_cast<std::size_t>(victim)].apk.name,
                             sd::FaultSpec::Kind::kInjected});
    }
    const sd::FaultScope scope{plan};

    const sd::Stopwatch watch;
    const sd::SuiteResult suite = sd::run_suite_parallel(factory, apps, hw);
    r.seconds = watch.seconds();
    r.observed_failures = suite.failures;
    r.apps_per_sec = r.seconds > 0 ? count / r.seconds : 0.0;
    results.push_back(r);

    std::printf("rate %5.1f%%: %3d planned, %3d failed, %6.2fs, "
                "%8.1f apps/sec\n",
                100.0 * rate, r.planned, r.observed_failures, r.seconds,
                r.apps_per_sec);
    if (r.observed_failures != r.planned) {
      std::fprintf(stderr,
                   "FAULT ACCOUNTING BROKEN: planned %d, observed %d\n",
                   r.planned, r.observed_failures);
      return 1;
    }
  }

  // No retry blowup: a faulted run does strictly less analysis work, so
  // its wall clock must not exceed the clean run by more than scheduling
  // noise. 1.25x headroom keeps the gate CI-stable.
  const double clean = results.front().seconds;
  bool blowup = false;
  for (const auto& r : results) {
    if (clean > 0 && r.seconds > clean * 1.25) blowup = true;
  }
  std::printf("retry blowup: %s (clean %.2fs, worst %.2fs)\n",
              blowup ? "DETECTED" : "none", clean,
              std::max({results[0].seconds, results[1].seconds,
                        results[2].seconds}));

  if (std::FILE* out = std::fopen("BENCH_faults.json", "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"fault_injected_batch\",\n"
                 "  \"apps\": %d,\n"
                 "  \"jobs\": %d,\n"
                 "  \"effective_jobs\": %d,\n"
                 "  \"hardware_concurrency\": %d,\n"
                 "  \"retry_blowup\": %s,\n"
                 "  \"rates\": [\n",
                 count, hw, hw, hw, blowup ? "true" : "false");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      std::fprintf(out,
                   "    {\"injected_rate\": %.2f, \"planned\": %d, "
                   "\"failures\": %d, \"seconds\": %.3f, "
                   "\"apps_per_sec\": %.2f}%s\n",
                   r.rate, r.planned, r.observed_failures, r.seconds,
                   r.apps_per_sec, i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("-> BENCH_faults.json\n");
  }
  return blowup ? 1 : 0;
}
