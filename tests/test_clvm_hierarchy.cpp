// Tests for the class-loading boundary (lazy CLVM vs eager loader) and the
// hierarchy analysis built on top of it.
#include <gtest/gtest.h>

#include "adf/repository.hpp"
#include "clvm/clvm.hpp"
#include "dex/builder.hpp"
#include "hierarchy/hierarchy.hpp"

namespace saintdroid {
namespace {

const FrameworkRepository& small_repo() {
  static const FrameworkRepository repo{[] {
    FrameworkConfig cfg;
    cfg.bulk_classes = 80;
    return cfg;
  }()};
  return repo;
}

Apk make_app() {
  DexBuilder main;
  auto& widget = main.add_class("com/app/MyView", "android/view/View");
  auto& wm = widget.add_method("poke");
  wm.invoke_virtual("com/app/MyView", "setBackground", "V",
                    {"android/graphics/drawable/Drawable"});
  wm.return_void();
  auto& listener =
      main.add_class("com/app/Clicker", "java/lang/Object",
                     {"android/view/View$OnClickListener"});
  auto& lm = listener.add_method("onClick", "V", {"android/view/View"});
  lm.return_void();

  DexBuilder secondary;
  auto& plugin = secondary.add_class("com/app/plugin/P");
  plugin.add_method("run").return_void();

  Apk apk;
  apk.name = "loader-test";
  apk.manifest.package = "com.app";
  apk.manifest.min_sdk = 15;
  apk.manifest.target_sdk = 26;
  apk.dexes.push_back(main.build());
  apk.dexes.push_back(secondary.build());
  return apk;
}

// --- lazy loading ------------------------------------------------------------

TEST(Clvm, LoadsOnDemandOnly) {
  const Apk apk = make_app();
  ClassLoaderVm vm{apk, small_repo().image(26)};
  EXPECT_EQ(vm.loaded_class_count(), 0u);
  EXPECT_EQ(vm.memory().peak_bytes(), 0u);

  const LoadedClass* view = vm.load("android/view/View");
  ASSERT_NE(view, nullptr);
  EXPECT_TRUE(view->from_framework);
  EXPECT_EQ(vm.loaded_class_count(), 1u);
  const auto after_one = vm.memory().peak_bytes();
  EXPECT_GT(after_one, 0u);

  // Re-loading is free and returns the same object.
  EXPECT_EQ(vm.load("android/view/View"), view);
  EXPECT_EQ(vm.loaded_class_count(), 1u);
  EXPECT_EQ(vm.memory().peak_bytes(), after_one);
}

TEST(Clvm, AppClassesVisibleAcrossDexes) {
  const Apk apk = make_app();
  ClassLoaderVm vm{apk, small_repo().image(26), /*include_secondary=*/true};
  const LoadedClass* plugin = vm.load("com/app/plugin/P");
  ASSERT_NE(plugin, nullptr);
  EXPECT_FALSE(plugin->from_framework);
}

TEST(Clvm, SecondaryDexHiddenWhenDisabled) {
  const Apk apk = make_app();
  ClassLoaderVm vm{apk, small_repo().image(26), /*include_secondary=*/false};
  EXPECT_EQ(vm.load("com/app/plugin/P"), nullptr);
  EXPECT_NE(vm.load("com/app/MyView"), nullptr);
}

TEST(Clvm, UnknownClassIsNull) {
  const Apk apk = make_app();
  ClassLoaderVm vm{apk, small_repo().image(26)};
  EXPECT_EQ(vm.load("com/runtime/GeneratedCheck"), nullptr);
}

TEST(Clvm, SharedFrameworkIndexEquivalent) {
  const Apk apk = make_app();
  ClassLoaderVm own{apk, small_repo().image(26)};
  ClassLoaderVm shared{apk, small_repo().image(26), true,
                       &small_repo().class_index(26)};
  for (const char* name :
       {"android/view/View", "com/app/MyView", "no/such/Class"}) {
    const LoadedClass* a = own.load(name);
    const LoadedClass* b = shared.load(name);
    EXPECT_EQ(a == nullptr, b == nullptr) << name;
    if (a && b) {
      EXPECT_EQ(a->name, b->name);
    }
  }
}

// --- eager loading --------------------------------------------------------------

TEST(EagerLoader, MaterializesWholeWorldUpFront) {
  const Apk apk = make_app();
  EagerLoader eager{apk, small_repo().image(26),
                    /*include_secondary=*/false, /*load_framework=*/true};
  const auto count = eager.loaded_class_count();
  EXPECT_GT(count, small_repo().image(26).classes().size() - 1);
  const auto peak = eager.memory().peak_bytes();
  // Loading afterwards adds nothing.
  EXPECT_NE(eager.load("android/view/View"), nullptr);
  EXPECT_EQ(eager.loaded_class_count(), count);
  EXPECT_EQ(eager.memory().peak_bytes(), peak);
  // Secondary dex excluded in CID mode.
  EXPECT_EQ(eager.load("com/app/plugin/P"), nullptr);
}

TEST(EagerLoader, CostsDominateLazyFootprint) {
  const Apk apk = make_app();
  EagerLoader eager{apk, small_repo().image(26), false, true};
  ClassLoaderVm lazy{apk, small_repo().image(26)};
  lazy.load("com/app/MyView");
  lazy.load("android/view/View");
  EXPECT_GT(eager.memory().peak_bytes(), 4 * lazy.memory().peak_bytes());
}

// --- hierarchy ---------------------------------------------------------------------

TEST(Hierarchy, ResolvesInheritedFrameworkMethod) {
  const Apk apk = make_app();
  ClassLoaderVm vm{apk, small_repo().image(26)};
  ClassHierarchy h{vm};
  const auto res = h.resolve("com/app/MyView", "setBackground",
                             "(Landroid/graphics/drawable/Drawable;)V");
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->id.class_name, "android/view/View");
  EXPECT_TRUE(res->declaring_class->from_framework);
}

TEST(Hierarchy, ResolvesThroughDeepChain) {
  const Apk apk = make_app();
  ClassLoaderVm vm{apk, small_repo().image(26)};
  ClassHierarchy h{vm};
  // Activity extends ContextThemeWrapper -> ContextWrapper -> Context.
  const auto res = h.resolve("android/app/Activity", "getColorStateList",
                             "(I)Landroid/content/res/ColorStateList;");
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->id.class_name, "android/content/Context");
}

TEST(Hierarchy, ResolutionFailsForUnknownMethod) {
  const Apk apk = make_app();
  ClassLoaderVm vm{apk, small_repo().image(26)};
  ClassHierarchy h{vm};
  EXPECT_FALSE(h.resolve("com/app/MyView", "noSuchMethod", "()V").has_value());
  EXPECT_FALSE(h.resolve("no/such/Class", "f", "()V").has_value());
}

TEST(Hierarchy, OverrideDetection) {
  const Apk apk = make_app();
  ClassLoaderVm vm{apk, small_repo().image(26)};
  ClassHierarchy h{vm};
  const LoadedClass* clicker = vm.load("com/app/Clicker");
  ASSERT_NE(clicker, nullptr);
  // onClick overrides the interface callback declaration.
  const auto res =
      h.overridden_framework_method(*clicker, clicker->def->methods[0]);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->id.class_name, "android/view/View$OnClickListener");
}

TEST(Hierarchy, AppOverrideShadowsFramework) {
  // If an app ancestor re-declares the method, it is not a framework
  // override (the app ancestor is what the subclass overrides).
  DexBuilder b;
  auto& base = b.add_class("com/app/Base", "android/view/View");
  base.add_method("onDraw", "V", {"android/graphics/Canvas"}).return_void();
  auto& derived = b.add_class("com/app/Derived", "com/app/Base");
  derived.add_method("onDraw", "V", {"android/graphics/Canvas"}).return_void();
  Apk apk;
  apk.name = "shadow";
  apk.manifest.package = "s";
  apk.manifest.min_sdk = 15;
  apk.dexes.push_back(b.build());

  ClassLoaderVm vm{apk, small_repo().image(26)};
  ClassHierarchy h{vm};
  const LoadedClass* d = vm.load("com/app/Derived");
  EXPECT_FALSE(
      h.overridden_framework_method(*d, d->def->methods[0]).has_value());
  // The base class, however, does override the framework method.
  const LoadedClass* base_cls = vm.load("com/app/Base");
  EXPECT_TRUE(
      h.overridden_framework_method(*base_cls, base_cls->def->methods[0])
          .has_value());
}

TEST(Hierarchy, SubtypeQueries) {
  const Apk apk = make_app();
  ClassLoaderVm vm{apk, small_repo().image(26)};
  ClassHierarchy h{vm};
  EXPECT_TRUE(h.is_subtype_of("com/app/MyView", "android/view/View"));
  EXPECT_TRUE(h.is_subtype_of("com/app/MyView", "java/lang/Object"));
  EXPECT_TRUE(
      h.is_subtype_of("com/app/Clicker", "android/view/View$OnClickListener"));
  EXPECT_FALSE(h.is_subtype_of("com/app/MyView", "android/app/Activity"));
  EXPECT_TRUE(h.is_subtype_of("x/Y", "x/Y"));  // reflexive even when unknown
}

TEST(Hierarchy, NearestFrameworkAncestor) {
  const Apk apk = make_app();
  ClassLoaderVm vm{apk, small_repo().image(26)};
  ClassHierarchy h{vm};
  const LoadedClass* anc = h.nearest_framework_ancestor("com/app/MyView");
  ASSERT_NE(anc, nullptr);
  EXPECT_EQ(anc->name, "android/view/View");
  EXPECT_EQ(h.nearest_framework_ancestor("no/such/Class"), nullptr);
}

TEST(Hierarchy, ResolutionDrivesLazyLoading) {
  // This is Algorithm 1 in miniature: a resolve() call pulls exactly the
  // ancestor chain into the VM, nothing else.
  const Apk apk = make_app();
  ClassLoaderVm vm{apk, small_repo().image(26)};
  ClassHierarchy h{vm};
  ASSERT_TRUE(h.resolve("android/app/Activity", "getColorStateList",
                        "(I)Landroid/content/res/ColorStateList;")
                  .has_value());
  // Activity + ContextThemeWrapper + ContextWrapper + Context == 4 loads.
  EXPECT_EQ(vm.loaded_class_count(), 4u);
}

}  // namespace
}  // namespace saintdroid
