// Unit tests for the support layer: byte I/O, interval algebra, RNG,
// statistics, interning and logging.
#include <gtest/gtest.h>

#include <limits>

#include "support/bytes.hpp"
#include "support/interner.hpp"
#include "support/interval.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace saintdroid {
namespace {

// --- bytes -------------------------------------------------------------------

TEST(Bytes, FixedWidthRoundTrip) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefULL);
  ByteReader r{w.data()};
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, LittleEndianLayout) {
  ByteWriter w;
  w.u32(0x11223344u);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[0], 0x44);
  EXPECT_EQ(w.data()[3], 0x11);
}

class UlebRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UlebRoundTrip, Value) {
  ByteWriter w;
  w.uleb(GetParam());
  ByteReader r{w.data()};
  EXPECT_EQ(r.uleb(), GetParam());
  EXPECT_TRUE(r.at_end());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, UlebRoundTrip,
    ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL, 129ULL, 16383ULL, 16384ULL,
                      (1ULL << 32) - 1, 1ULL << 32,
                      std::numeric_limits<std::uint64_t>::max()));

class SlebRoundTrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SlebRoundTrip, Value) {
  ByteWriter w;
  w.sleb(GetParam());
  ByteReader r{w.data()};
  EXPECT_EQ(r.sleb(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, SlebRoundTrip,
    ::testing::Values(std::int64_t{0}, std::int64_t{-1}, std::int64_t{1},
                      std::int64_t{-64}, std::int64_t{63}, std::int64_t{-65},
                      std::numeric_limits<std::int64_t>::min(),
                      std::numeric_limits<std::int64_t>::max()));

TEST(Bytes, StringRoundTrip) {
  ByteWriter w;
  w.str("");
  w.str("hello");
  w.str(std::string(1000, 'x'));
  ByteReader r{w.data()};
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), std::string(1000, 'x'));
}

TEST(Bytes, TruncationThrows) {
  ByteWriter w;
  w.u32(42);
  const auto& bytes = w.data();
  ByteReader r{std::span<const std::uint8_t>(bytes.data(), 2)};
  EXPECT_THROW(r.u32(), ParseError);
}

TEST(Bytes, TruncatedStringThrows) {
  ByteWriter w;
  w.uleb(100);  // claims 100 bytes follow
  w.u8('a');
  ByteReader r{w.data()};
  EXPECT_THROW(r.str(), ParseError);
}

TEST(Bytes, OverlongUlebThrows) {
  // Eleven continuation bytes exceed any 64-bit value.
  std::vector<std::uint8_t> bad(11, 0x80);
  ByteReader r{bad};
  EXPECT_THROW(r.uleb(), ParseError);
}

// --- interval ----------------------------------------------------------------

TEST(Interval, Basics) {
  const ApiInterval full = ApiInterval::full();
  EXPECT_EQ(full.lo(), kMinApiLevel);
  EXPECT_EQ(full.hi(), kMaxApiLevel);
  EXPECT_FALSE(full.empty());
  EXPECT_TRUE(ApiInterval::empty_interval().empty());
  EXPECT_EQ(ApiInterval(5, 9).size(), 5);
  EXPECT_EQ(ApiInterval::empty_interval().size(), 0);
}

TEST(Interval, IntersectAndHull) {
  const ApiInterval a{5, 15};
  const ApiInterval b{10, 20};
  EXPECT_EQ(a.intersect(b), ApiInterval(10, 15));
  EXPECT_EQ(a.hull(b), ApiInterval(5, 20));
  const ApiInterval disjoint{25, 28};
  EXPECT_TRUE(a.intersect(disjoint).empty());
  EXPECT_EQ(a.hull(disjoint), ApiInterval(5, 28));  // over-approximation
}

TEST(Interval, EmptyIsAbsorbing) {
  const ApiInterval e = ApiInterval::empty_interval();
  const ApiInterval a{5, 10};
  EXPECT_TRUE(e.intersect(a).empty());
  EXPECT_EQ(e.hull(a), a);
  EXPECT_EQ(a.hull(e), a);
  EXPECT_EQ(e, ApiInterval(9, 3));  // all empties compare equal
}

// Property: intersection is the exact set intersection, hull contains the
// set union — checked pointwise over every level pair combination.
class IntervalProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(IntervalProperty, PointwiseSemantics) {
  const auto [alo, ahi, blo, bhi] = GetParam();
  const ApiInterval a{alo, ahi};
  const ApiInterval b{blo, bhi};
  for (int level = kMinApiLevel; level <= kMaxApiLevel; ++level) {
    EXPECT_EQ(a.intersect(b).contains(level),
              a.contains(level) && b.contains(level));
    if (a.contains(level) || b.contains(level)) {
      EXPECT_TRUE(a.hull(b).contains(level));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, IntervalProperty,
    ::testing::Combine(::testing::Values(2, 11, 23), ::testing::Values(9, 23, 29),
                       ::testing::Values(2, 15, 24), ::testing::Values(3, 22, 29)));

// --- rng ---------------------------------------------------------------------

TEST(Rng, Deterministic) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b();
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformWithinBounds) {
  Rng rng{7};
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.uniform(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng rng{7};
  bool saw[11] = {};
  for (int i = 0; i < 5'000; ++i) saw[rng.uniform(0, 10)] = true;
  for (const bool s : saw) EXPECT_TRUE(s);
}

TEST(Rng, ChanceExtremes) {
  Rng rng{3};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ForkIndependence) {
  Rng parent{11};
  Rng child = parent.fork();
  // The child stream must not replay the parent stream.
  Rng parent2{11};
  (void)parent2.fork();
  int equal = 0;
  for (int i = 0; i < 50; ++i) equal += child() == parent();
  EXPECT_LT(equal, 3);
}

// --- stats -------------------------------------------------------------------

TEST(Stats, WelfordMatchesDirect) {
  OnlineStats s;
  const double xs[] = {1.0, 2.0, 4.0, 8.0, 16.0};
  double sum = 0;
  for (const double x : xs) {
    s.add(x);
    sum += x;
  }
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), sum / 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
  double var = 0;
  for (const double x : xs) var += (x - s.mean()) * (x - s.mean());
  var /= 4.0;
  EXPECT_NEAR(s.variance(), var, 1e-12);
}

TEST(Stats, EmptyAndSingle) {
  OnlineStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Stats, Percentile) {
  std::vector<double> xs{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 30);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 20);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 99), 7.0);
}

// --- interner ----------------------------------------------------------------

TEST(Interner, DedupAndLookup) {
  StringInterner in;
  const Symbol a = in.intern("alpha");
  const Symbol b = in.intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(in.intern("alpha"), a);
  EXPECT_EQ(in.lookup(a), "alpha");
  EXPECT_EQ(in.lookup(b), "beta");
  EXPECT_EQ(in.size(), 2u);
  EXPECT_EQ(in.find("alpha"), a);
  EXPECT_EQ(in.find("gamma"), StringInterner::npos);
}

// --- log ---------------------------------------------------------------------

TEST(Log, LevelGating) {
  const LogLevel prior = log_level();
  set_log_level(LogLevel::kOff);
  log_info("suppressed");  // must not crash and emits nothing visible
  set_log_level(LogLevel::kInfo);
  EXPECT_EQ(log_level(), LogLevel::kInfo);
  set_log_level(prior);
}

}  // namespace
}  // namespace saintdroid
