// Shared framework substrate suite.
//
// The load-bearing property: the substrate is a pure caching layer. Every
// reported field — rows, scores, mismatch counts, peak_bytes,
// loaded_classes — is byte-identical with the substrate on or off, at any
// worker count; the per-(level, options) cache builds exactly once under
// concurrent first requests; and a poisoned level fails only the analyses
// that need it, retrying (and succeeding) once the fault clears.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "adf/repository.hpp"
#include "clvm/substrate.hpp"
#include "core/arm.hpp"
#include "core/saintdroid.hpp"
#include "support/faults.hpp"
#include "workload/corpus.hpp"
#include "workload/harness.hpp"
#include "workload/journal.hpp"

namespace saintdroid {
namespace {

/// Canonical byte form of a suite: one journal line per row with the
/// wall-clock seconds zeroed (the only legitimately nondeterministic
/// field). Two suites are byte-identical iff these strings are equal.
std::string suite_bytes(const SuiteResult& suite) {
  std::string bytes;
  for (SuiteAppRow row : suite.rows) {
    row.usage.seconds = 0.0;
    bytes += journal_line(row);
    bytes += '\n';
  }
  return bytes;
}

/// Small framework config for tests that need a private repository (cache
/// stampede, poisoned level) — standard()'s substrate slots may already be
/// built by earlier tests in this process.
FrameworkConfig small_framework() {
  FrameworkConfig cfg;
  cfg.bulk_classes = 300;
  cfg.bulk_packages = 12;
  return cfg;
}

// --- substrate structure -------------------------------------------------------

TEST(Substrate, MaterializesEveryImageClassOnce) {
  const auto& repo = FrameworkRepository::standard();
  const DexFile& image = repo.image(25);
  const FrameworkSubstrate sub{image, 25, {}};
  EXPECT_EQ(sub.level(), 25);
  EXPECT_GT(sub.class_count(), 0u);
  EXPECT_GT(sub.total_footprint(), 0u);
  EXPECT_LE(sub.class_count(), image.classes().size());

  const std::string name = image.type_name(image.classes().front().type);
  const LoadedClass* cls = sub.find_class(name);
  ASSERT_NE(cls, nullptr);
  EXPECT_EQ(cls->name, name);
  EXPECT_TRUE(cls->from_framework);
  EXPECT_GT(cls->footprint, 0u);
  EXPECT_TRUE(sub.owns(*cls));
  EXPECT_EQ(sub.find_class("no/such/Class"), nullptr);
}

TEST(Substrate, MethodTablesMatchDeclarationsExactly) {
  const auto& repo = FrameworkRepository::standard();
  const DexFile& image = repo.image(25);
  const FrameworkSubstrate sub{image, 25, {}};

  const std::string name = image.type_name(image.classes().front().type);
  const LoadedClass* cls = sub.find_class(name);
  ASSERT_NE(cls, nullptr);
  const FrameworkSubstrate::ClassEntry* entry = sub.entry_of(*cls);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(&entry->cls, cls);

  // The method table mirrors the declaration list one-to-one, with names
  // and descriptors prebuilt and invoke edges matching the instructions.
  ASSERT_EQ(entry->methods.size(), cls->def->methods.size());
  for (std::size_t i = 0; i < entry->methods.size(); ++i) {
    const MethodDef& def = cls->def->methods[i];
    const FrameworkSubstrate::MethodEntry& me = entry->methods[i];
    EXPECT_EQ(me.def, &def);
    EXPECT_EQ(me.name, image.string_at(def.name));
    EXPECT_EQ(me.descriptor, image.descriptor_of(def.proto));
    std::size_t invokes = 0;
    if (def.code) {
      for (const auto& insn : def.code->insns) {
        if (insn.op != Opcode::kInvoke) continue;
        ASSERT_LT(invokes, me.callees.size());
        const FrameworkSubstrate::CalleeEdge& edge = me.callees[invokes];
        ASSERT_NE(edge.id, nullptr);
        const MethodId expect = image.method_id_at(insn.index);
        EXPECT_EQ(edge.id->class_name, expect.class_name);
        EXPECT_EQ(edge.id->name, expect.name);
        EXPECT_EQ(edge.id->descriptor, expect.descriptor);
        if (edge.target != nullptr) {
          EXPECT_EQ(edge.target, sub.find_class(expect.class_name));
          EXPECT_EQ(sub.entry_of(*edge.target)->slot, edge.target_slot);
        }
        ++invokes;
      }
    }
    EXPECT_EQ(me.callees.size(), invokes);
  }

  // The super edge points at the substrate class the name resolves to.
  if (entry->super != nullptr) {
    EXPECT_EQ(&entry->super->cls, sub.find_class(cls->super_name));
  }

  // A private copy of the class is not owned by the substrate: identity
  // lookups must refuse (caller falls back to scanning), never answer for
  // a class they do not own.
  const LoadedClass copy = *cls;
  EXPECT_FALSE(sub.owns(copy));
  EXPECT_EQ(sub.entry_of(copy), nullptr);
}

TEST(Substrate, UnindexedOptionsSkipMethodTables) {
  const auto& repo = FrameworkRepository::standard();
  const DexFile& image = repo.image(25);
  SubstrateOptions options;
  options.index_methods = false;
  const FrameworkSubstrate sub{image, 25, options};
  const std::string name = image.type_name(image.classes().front().type);
  const LoadedClass* cls = sub.find_class(name);
  ASSERT_NE(cls, nullptr);
  EXPECT_TRUE(sub.owns(*cls));
  const FrameworkSubstrate::ClassEntry* entry = sub.entry_of(*cls);
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->methods.empty());
}

// --- cache: one build per key, even under a stampede ---------------------------

TEST(SubstrateCache, ConcurrentFirstRequestsBuildOnce) {
  const FrameworkRepository repo{small_framework()};
  constexpr int kThreads = 8;

  std::vector<std::future<std::shared_ptr<const FrameworkSubstrate>>> reqs;
  reqs.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    reqs.push_back(std::async(std::launch::async,
                              [&repo] { return repo.substrate(17); }));
  }
  std::vector<std::shared_ptr<const FrameworkSubstrate>> handles;
  handles.reserve(kThreads);
  for (auto& r : reqs) handles.push_back(r.get());

  for (const auto& h : handles) {
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h.get(), handles.front().get());  // one object, shared
  }
  EXPECT_EQ(repo.substrate_build_count(), 1u);

  // A different options value is a different key: second build.
  SubstrateOptions unindexed;
  unindexed.index_methods = false;
  const auto other = repo.substrate(17, unindexed);
  ASSERT_NE(other, nullptr);
  EXPECT_NE(other.get(), handles.front().get());
  EXPECT_EQ(repo.substrate_build_count(), 2u);

  // Same key again: cache hit, no third build.
  EXPECT_EQ(repo.substrate(17).get(), handles.front().get());
  EXPECT_EQ(repo.substrate_build_count(), 2u);
}

// --- fault injection inside the build ------------------------------------------

TEST(SubstrateCache, PoisonedLevelFailsAloneAndRetries) {
  const FrameworkRepository repo{small_framework()};
  const std::uint64_t retries_before = framework_build_retries();

  {
    FaultPlan plan;
    plan.faults.push_back(
        {"adf.substrate", "substrate:level23", FaultSpec::Kind::kInjected});
    const FaultScope scope{plan};

    // The poisoned level throws; the sibling level builds fine.
    EXPECT_THROW((void)repo.substrate(23), InjectedFault);
    EXPECT_NO_THROW((void)repo.substrate(11));
    EXPECT_EQ(repo.substrate_build_count(), 1u);

    // A second request while still poisoned re-enters the build (the
    // failed attempt never satisfied the once-guard) and fails again.
    EXPECT_THROW((void)repo.substrate(23), InjectedFault);
  }

  // Fault cleared: the next request rebuilds and succeeds.
  std::shared_ptr<const FrameworkSubstrate> sub;
  ASSERT_NO_THROW(sub = repo.substrate(23));
  ASSERT_NE(sub, nullptr);
  EXPECT_EQ(sub->level(), 23);
  EXPECT_EQ(repo.substrate_build_count(), 2u);

  // Every re-entry after the first attempt counts as a retry: two here
  // (second poisoned request + the post-disarm rebuild).
  EXPECT_EQ(framework_build_retries() - retries_before, 2u);
}

// --- parallel ARM mining -------------------------------------------------------

TEST(ParallelMining, DatabaseIsJobsInvariant) {
  const FrameworkRepository repo{small_framework()};
  const ApiDatabase serial = ApiDatabase::mine(repo, 1);
  const ApiDatabase parallel = ApiDatabase::mine(repo, 4);
  EXPECT_GT(serial.method_count(), 0u);
  EXPECT_EQ(serial.method_count(), parallel.method_count());
  EXPECT_EQ(serial.callback_count(), parallel.callback_count());
  EXPECT_EQ(serial.permission_mapping_count(),
            parallel.permission_mapping_count());
  // Byte-identical serialization: same insertion sequences, hence same
  // hash-map iteration order, hence the same bytes.
  EXPECT_EQ(serial.serialize(), parallel.serialize());
}

// --- shared suite fixture ------------------------------------------------------

constexpr int kCorpusSize = 96;

/// 96 small corpus apps, a pre-mined database, and a serial unshared
/// reference run — built once and reused by the determinism tests.
class SubstrateSuite : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto& repo = FrameworkRepository::standard();
    CorpusConfig config;
    config.app_count = kCorpusSize;
    config.size_base = 120.0;
    config.size_spread = 1.5;
    config.api_issue_mean = 6.0;
    corpus_ = new RealWorldCorpus{repo, config};
    apps_ = new std::vector<BenchApp>{
        corpus_->generate_range(0, kCorpusSize, 8)};
    SaintDroid miner{repo};
    db_ = new std::shared_ptr<const ApiDatabase>{miner.shared_database()};
    reference_ = new SuiteResult{
        run_suite_parallel(factory(/*shared_substrate=*/false), *apps_, 1)};
  }

  static void TearDownTestSuite() {
    delete reference_;
    delete db_;
    delete apps_;
    delete corpus_;
    reference_ = nullptr;
    db_ = nullptr;
    apps_ = nullptr;
    corpus_ = nullptr;
  }

  static AnalyzerFactory factory(bool shared_substrate) {
    return [shared_substrate] {
      SaintDroidOptions options;
      options.shared_substrate = shared_substrate;
      return std::make_unique<SaintDroid>(FrameworkRepository::standard(),
                                          *db_, options);
    };
  }

  static RealWorldCorpus* corpus_;
  static std::vector<BenchApp>* apps_;
  static std::shared_ptr<const ApiDatabase>* db_;
  static SuiteResult* reference_;
};

RealWorldCorpus* SubstrateSuite::corpus_ = nullptr;
std::vector<BenchApp>* SubstrateSuite::apps_ = nullptr;
std::shared_ptr<const ApiDatabase>* SubstrateSuite::db_ = nullptr;
SuiteResult* SubstrateSuite::reference_ = nullptr;

// --- the sharing-is-invisible property -----------------------------------------

TEST_F(SubstrateSuite, SharedAndUnsharedRowsAreByteIdenticalAcrossJobs) {
  const std::string expected = suite_bytes(*reference_);
  for (const bool shared : {false, true}) {
    for (const int jobs : {1, 2, 8}) {
      SCOPED_TRACE("shared=" + std::to_string(shared) +
                   " jobs=" + std::to_string(jobs));
      const SuiteResult suite =
          run_suite_parallel(factory(shared), *apps_, jobs);
      EXPECT_EQ(suite_bytes(suite), expected);
    }
  }
}

TEST_F(SubstrateSuite, SingleAppReportIsIdenticalEitherWay) {
  SaintDroidOptions shared_options;
  SaintDroidOptions unshared_options;
  unshared_options.shared_substrate = false;
  SaintDroid with{FrameworkRepository::standard(), *db_, shared_options};
  SaintDroid without{FrameworkRepository::standard(), *db_, unshared_options};

  const Apk& apk = (*apps_)[1].apk;
  AnalysisResult a = with.analyze(apk);
  AnalysisResult b = without.analyze(apk);
  a.usage.seconds = 0.0;  // wall clock is the one nondeterministic field
  b.usage.seconds = 0.0;
  EXPECT_EQ(a.to_text(apk.name), b.to_text(apk.name));
  // Accounting parity: a shared framework class charges exactly the bytes
  // a private copy would, so memory telemetry is comparable across modes.
  EXPECT_EQ(a.usage.peak_bytes, b.usage.peak_bytes);
  EXPECT_EQ(a.usage.loaded_classes, b.usage.loaded_classes);
}

TEST_F(SubstrateSuite, WarmupHookRunsBeforeAnalysis) {
  bool warmed = false;
  SuiteRunOptions options;
  options.jobs = 2;
  options.warmup = [&warmed] { warmed = true; };
  const std::vector<BenchApp> head{apps_->begin(), apps_->begin() + 4};
  const SuiteResult suite =
      run_suite_parallel(factory(true), head, options);
  EXPECT_TRUE(warmed);
  EXPECT_EQ(suite.rows.size(), 4u);
}

// --- poisoned level under a full suite -----------------------------------------

TEST(SubstratePoisonedSuite, OnePoisonedLevelFailsOnlyItsApps) {
  // Private repository + corpus: the fault must hit a cold substrate slot,
  // and standard()'s slots are warm by now.
  const FrameworkRepository repo{small_framework()};
  CorpusConfig config;
  config.app_count = 48;
  config.size_base = 100.0;
  config.size_spread = 1.5;
  config.api_issue_mean = 4.0;
  const RealWorldCorpus corpus{repo, config};
  const std::vector<BenchApp> apps = corpus.generate_range(0, 48, 4);
  SaintDroid miner{repo};
  const auto db = miner.shared_database();

  const auto factory = [&repo, &db](bool shared_substrate) {
    return AnalyzerFactory{[&repo, &db, shared_substrate] {
      SaintDroidOptions options;
      options.shared_substrate = shared_substrate;
      return std::make_unique<SaintDroid>(repo, db, options);
    }};
  };

  // Reference run without the substrate, so no slot is built before the
  // fault is armed; results are identical either way by the sharing
  // contract, so the rows are comparable.
  const SuiteResult clean = run_suite_parallel(factory(false), apps, 4);

  // Poison the most-targeted level (guaranteed >= 2 victims).
  std::vector<int> per_level(static_cast<std::size_t>(kMaxApiLevel) + 1, 0);
  for (const auto& app : apps)
    ++per_level[static_cast<std::size_t>(
        FrameworkRepository::clamp_level(app.apk.manifest.target_sdk))];
  int poisoned = 0;
  for (int l = 0; l <= kMaxApiLevel; ++l)
    if (per_level[static_cast<std::size_t>(l)] >
        per_level[static_cast<std::size_t>(poisoned)])
      poisoned = l;
  const int victims = per_level[static_cast<std::size_t>(poisoned)];
  ASSERT_GE(victims, 2);

  FaultPlan plan;
  plan.faults.push_back({"adf.substrate",
                         "substrate:level" + std::to_string(poisoned),
                         FaultSpec::Kind::kInjected});

  {
    const FaultScope scope{plan};
    bool first_run = true;
    for (const int jobs : {1, 2, 8}) {
      SCOPED_TRACE("jobs=" + std::to_string(jobs));
      const SuiteResult faulted = run_suite_parallel(factory(true), apps,
                                                     jobs);
      ASSERT_EQ(faulted.rows.size(), apps.size());
      EXPECT_EQ(faulted.failures, victims);
      for (std::size_t i = 0; i < faulted.rows.size(); ++i) {
        SCOPED_TRACE("row " + std::to_string(i));
        const int level = FrameworkRepository::clamp_level(
            apps[i].apk.manifest.target_sdk);
        const SuiteAppRow& row = faulted.rows[i];
        if (level == poisoned) {
          EXPECT_FALSE(row.completed);
          ASSERT_TRUE(row.failure.has_value());
          EXPECT_EQ(row.failure->kind, FailureKind::kInjected);
          EXPECT_EQ(row.failure->phase, "framework");
        } else {
          // Untouched levels produce exactly the clean run's rows.
          SuiteAppRow expected = clean.rows[i];
          SuiteAppRow actual = row;
          expected.usage.seconds = 0.0;
          actual.usage.seconds = 0.0;
          EXPECT_EQ(journal_line(actual), journal_line(expected));
        }
      }
      // Each victim past the first re-enters the failed build; the exact
      // retry count is surfaced on the suite result (satellite telemetry).
      const auto expected_retries =
          static_cast<std::uint64_t>(first_run ? victims - 1 : victims);
      EXPECT_EQ(faulted.framework_retries, expected_retries);
      first_run = false;
    }
  }

  // Fault cleared: the poisoned level builds on the next suite run and the
  // whole corpus matches the clean reference again.
  const SuiteResult healed = run_suite_parallel(factory(true), apps, 4);
  EXPECT_EQ(healed.failures, clean.failures);
  EXPECT_EQ(suite_bytes(healed), suite_bytes(clean));
  EXPECT_GT(repo.substrate_build_count(), 0u);
}

}  // namespace
}  // namespace saintdroid
