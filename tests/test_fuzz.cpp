// Robustness fuzzing for the binary decoders: mutated, truncated and
// random byte streams must never crash, read out of bounds, or loop — the
// parser either throws ParseError or yields a container whose every index
// is valid.
//
// These are deterministic seeded sweeps (no external fuzzer needed), sized
// to run in well under a second per case.
#include <gtest/gtest.h>

#include "adf/image.hpp"
#include "adf/repository.hpp"
#include "core/arm.hpp"
#include "core/saintdroid.hpp"
#include "dex/apk.hpp"
#include "dex/builder.hpp"
#include "dex/disasm.hpp"
#include "support/rng.hpp"
#include "workload/app_builder.hpp"

namespace saintdroid {
namespace {

std::vector<std::uint8_t> seed_bytes() {
  DexBuilder b;
  auto& cls = b.add_class("f/Seed", "android/app/Activity");
  auto& m = cls.add_method("go", "V", {"android/os/Bundle"});
  m.registers(6);
  m.sget_sdk_int(0);
  Label skip = m.new_label();
  m.if_lit(CmpOp::kLt, 0, 23, skip);
  m.const_string(1, "android.permission.CAMERA");
  m.invoke_virtual("android/content/Context", "getColorStateList",
                   "android/content/res/ColorStateList", {"I"});
  m.move_result(2);
  m.new_instance(3, "android/content/Intent");
  m.load_class(4, "f/Late");
  m.bind(skip);
  m.return_void();
  return b.build().serialize();
}

/// Consumes a parsed container completely: touches every pool entry and
/// every instruction through the public accessors (which contract-check
/// indices) and runs the disassembler over all of it.
void exercise(const DexFile& dex) {
  for (std::uint32_t i = 0; i < dex.type_count(); ++i) (void)dex.type_name(i);
  for (std::uint32_t i = 0;
       i < static_cast<std::uint32_t>(dex.method_ref_count()); ++i)
    (void)dex.method_id_at(i);
  for (std::uint32_t i = 0;
       i < static_cast<std::uint32_t>(dex.field_ref_count()); ++i)
    (void)dex.field_id_at(i);
  (void)disassemble(dex);
  (void)dex.footprint_bytes();
}

class ByteFlip : public ::testing::TestWithParam<int> {};

TEST_P(ByteFlip, SingleMutationNeverCrashes) {
  const auto base = seed_bytes();
  Rng rng{static_cast<std::uint64_t>(GetParam())};
  for (int trial = 0; trial < 400; ++trial) {
    auto bytes = base;
    const auto pos = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(bytes.size()) - 1));
    bytes[pos] ^= static_cast<std::uint8_t>(rng.uniform(1, 255));
    try {
      const DexFile dex = DexFile::parse(bytes);
      exercise(dex);  // accepted inputs must be fully traversable
    } catch (const ParseError&) {
      // rejected: fine
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ByteFlip, ::testing::Range(1, 9));

TEST(Fuzz, EveryTruncationRejectsOrParses) {
  const auto base = seed_bytes();
  for (std::size_t cut = 0; cut < base.size(); ++cut) {
    std::span<const std::uint8_t> window(base.data(), cut);
    try {
      const DexFile dex = DexFile::parse(window);
      exercise(dex);
    } catch (const ParseError&) {
    }
  }
}

TEST(Fuzz, RandomBytesNeverCrash) {
  Rng rng{0xF422ULL};
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> bytes(
        static_cast<std::size_t>(rng.uniform(0, 400)));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
    // Half the trials get the valid magic so deeper paths are reached.
    if (bytes.size() >= 8 && rng.chance(0.5)) {
      bytes[0] = 0x53; bytes[1] = 0x44; bytes[2] = 0x45; bytes[3] = 0x58;
      bytes[4] = 1; bytes[5] = 0; bytes[6] = 0; bytes[7] = 0;
    }
    try {
      const DexFile dex = DexFile::parse(bytes);
      exercise(dex);
    } catch (const ParseError&) {
    }
  }
}

TEST(Fuzz, ApkContainerMutations) {
  AppBuilder b{"fuzz", "com.fuzz.app", FrameworkRepository::standard().spec()};
  b.sdk(16, 26);
  b.api_call(catalog::get_color_state_list(), GuardMode::kNone,
             Placement::kSecondaryDex);
  const auto base = b.build().apk.serialize();
  Rng rng{0xA99ULL};
  for (int trial = 0; trial < 300; ++trial) {
    auto bytes = base;
    const int mutations = static_cast<int>(rng.uniform(1, 4));
    for (int m = 0; m < mutations; ++m) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(bytes.size()) - 1));
      bytes[pos] ^= static_cast<std::uint8_t>(rng.uniform(1, 255));
    }
    try {
      const Apk apk = Apk::parse(bytes);
      for (const auto& dex : apk.dexes) exercise(dex);
      (void)apk.manifest.supported_range();
    } catch (const ParseError&) {
    }
  }
}

TEST(Fuzz, FrameworkImageTruncationSweep) {
  // The framework image is itself an SDEX container; a damaged on-disk
  // framework must fail exactly like a damaged app: ParseError, never a
  // contract abort or an out-of-bounds read.
  const auto base =
      emit_framework_image(FrameworkRepository::standard().spec(), 23)
          .serialize();
  for (std::size_t cut = 0; cut < base.size();
       cut += 1 + cut / 64) {  // denser probing near the header
    std::span<const std::uint8_t> window(base.data(), cut);
    try {
      const DexFile dex = DexFile::parse(window);
      exercise(dex);
    } catch (const ParseError&) {
    }
  }
}

TEST(Fuzz, FrameworkImageBitFlipSweep) {
  const auto base =
      emit_framework_image(FrameworkRepository::standard().spec(), 23)
          .serialize();
  Rng rng{0xADFULL};
  for (int trial = 0; trial < 300; ++trial) {
    auto bytes = base;
    const auto pos = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(bytes.size()) - 1));
    bytes[pos] ^= static_cast<std::uint8_t>(rng.uniform(1, 255));
    try {
      const DexFile dex = DexFile::parse(bytes);
      exercise(dex);
    } catch (const ParseError&) {
    }
  }
}

TEST(Fuzz, ApiDatabaseTruncationAndBitFlipSweep) {
  // The persisted ARM database (`saintdroid mine` output) gets the same
  // treatment: every damaged load either throws ParseError or yields a
  // database whose accessors are safe to call.
  const auto base =
      ApiDatabase::mine(FrameworkRepository::standard()).serialize();
  for (std::size_t cut = 0; cut < base.size(); cut += 1 + cut / 64) {
    std::span<const std::uint8_t> window(base.data(), cut);
    try {
      const ApiDatabase db = ApiDatabase::parse(window);
      (void)db.method_count();
      (void)db.callback_count();
      (void)db.permission_mapping_count();
    } catch (const ParseError&) {
    }
  }
  Rng rng{0xA2BULL};
  for (int trial = 0; trial < 300; ++trial) {
    auto bytes = base;
    const auto pos = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(bytes.size()) - 1));
    bytes[pos] ^= static_cast<std::uint8_t>(rng.uniform(1, 255));
    try {
      const ApiDatabase db = ApiDatabase::parse(bytes);
      (void)db.method_count();
      (void)db.callback_count();
      (void)db.permission_mapping_count();
    } catch (const ParseError&) {
    }
  }
}

TEST(Fuzz, AcceptedMutantsSurviveAnalysis) {
  // The strongest end-to-end property: if a mutated package parses, the
  // full analyzer must process it without crashing (unresolvable garbage
  // degrades conservatively, like unanalyzable late-bound code).
  AppBuilder b{"fuzz2", "com.fuzz.app2",
               FrameworkRepository::standard().spec()};
  b.sdk(16, 26);
  b.api_call(catalog::get_color_state_list());
  b.callback_override(catalog::on_attach_context());
  const auto base = b.build().apk.serialize();
  SaintDroid tool{FrameworkRepository::standard()};
  Rng rng{0xE2EULL};
  int analyzed = 0;
  for (int trial = 0; trial < 200; ++trial) {
    auto bytes = base;
    const auto pos = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(bytes.size()) - 1));
    bytes[pos] ^= static_cast<std::uint8_t>(rng.uniform(1, 255));
    try {
      const Apk apk = Apk::parse(bytes);
      const AnalysisResult result = tool.analyze(apk);
      (void)result.to_text(apk.name);
      ++analyzed;
    } catch (const ParseError&) {
    }
  }
  // Some mutants must survive parsing or the test proves nothing.
  EXPECT_GT(analyzed, 0);
}

}  // namespace
}  // namespace saintdroid
