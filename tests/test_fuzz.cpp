// Robustness fuzzing for the binary decoders: mutated, truncated and
// random byte streams must never crash, read out of bounds, or loop — the
// parser either throws ParseError or yields a container whose every index
// is valid.
//
// These are deterministic seeded sweeps (no external fuzzer needed), sized
// to run in well under a second per case.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <span>
#include <string>

#include <filesystem>
#include <fstream>

#include "adf/image.hpp"
#include "adf/repository.hpp"
#include "core/arm.hpp"
#include "core/saintdroid.hpp"
#include "core/semantics.hpp"
#include "dex/apk.hpp"
#include "dex/builder.hpp"
#include "dex/disasm.hpp"
#include "core/outcome.hpp"
#include "dist/lease.hpp"
#include "dist/workdir.hpp"
#include "serve/codec.hpp"
#include "serve/state.hpp"
#include "support/errors.hpp"
#include "support/rng.hpp"
#include "support/sdmc.hpp"
#include "core/incr_cache.hpp"
#include "workload/app_builder.hpp"
#include "workload/corpus.hpp"
#include "workload/harness.hpp"
#include "workload/journal.hpp"

namespace saintdroid {
namespace {

std::vector<std::uint8_t> seed_bytes() {
  DexBuilder b;
  auto& cls = b.add_class("f/Seed", "android/app/Activity");
  auto& m = cls.add_method("go", "V", {"android/os/Bundle"});
  m.registers(6);
  m.sget_sdk_int(0);
  Label skip = m.new_label();
  m.if_lit(CmpOp::kLt, 0, 23, skip);
  m.const_string(1, "android.permission.CAMERA");
  m.invoke_virtual("android/content/Context", "getColorStateList",
                   "android/content/res/ColorStateList", {"I"});
  m.move_result(2);
  m.new_instance(3, "android/content/Intent");
  m.load_class(4, "f/Late");
  m.bind(skip);
  m.return_void();
  return b.build().serialize();
}

/// Consumes a parsed container completely: touches every pool entry and
/// every instruction through the public accessors (which contract-check
/// indices) and runs the disassembler over all of it.
void exercise(const DexFile& dex) {
  for (std::uint32_t i = 0; i < dex.type_count(); ++i) (void)dex.type_name(i);
  for (std::uint32_t i = 0;
       i < static_cast<std::uint32_t>(dex.method_ref_count()); ++i)
    (void)dex.method_id_at(i);
  for (std::uint32_t i = 0;
       i < static_cast<std::uint32_t>(dex.field_ref_count()); ++i)
    (void)dex.field_id_at(i);
  (void)disassemble(dex);
  (void)dex.footprint_bytes();
}

class ByteFlip : public ::testing::TestWithParam<int> {};

TEST_P(ByteFlip, SingleMutationNeverCrashes) {
  const auto base = seed_bytes();
  Rng rng{static_cast<std::uint64_t>(GetParam())};
  for (int trial = 0; trial < 400; ++trial) {
    auto bytes = base;
    const auto pos = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(bytes.size()) - 1));
    bytes[pos] ^= static_cast<std::uint8_t>(rng.uniform(1, 255));
    try {
      const DexFile dex = DexFile::parse(bytes);
      exercise(dex);  // accepted inputs must be fully traversable
    } catch (const ParseError&) {
      // rejected: fine
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ByteFlip, ::testing::Range(1, 9));

TEST(Fuzz, EveryTruncationRejectsOrParses) {
  const auto base = seed_bytes();
  for (std::size_t cut = 0; cut < base.size(); ++cut) {
    std::span<const std::uint8_t> window(base.data(), cut);
    try {
      const DexFile dex = DexFile::parse(window);
      exercise(dex);
    } catch (const ParseError&) {
    }
  }
}

TEST(Fuzz, RandomBytesNeverCrash) {
  Rng rng{0xF422ULL};
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> bytes(
        static_cast<std::size_t>(rng.uniform(0, 400)));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
    // Half the trials get the valid magic so deeper paths are reached.
    if (bytes.size() >= 8 && rng.chance(0.5)) {
      bytes[0] = 0x53; bytes[1] = 0x44; bytes[2] = 0x45; bytes[3] = 0x58;
      bytes[4] = 1; bytes[5] = 0; bytes[6] = 0; bytes[7] = 0;
    }
    try {
      const DexFile dex = DexFile::parse(bytes);
      exercise(dex);
    } catch (const ParseError&) {
    }
  }
}

TEST(Fuzz, ApkContainerMutations) {
  AppBuilder b{"fuzz", "com.fuzz.app", FrameworkRepository::standard().spec()};
  b.sdk(16, 26);
  b.api_call(catalog::get_color_state_list(), GuardMode::kNone,
             Placement::kSecondaryDex);
  const auto base = b.build().apk.serialize();
  Rng rng{0xA99ULL};
  for (int trial = 0; trial < 300; ++trial) {
    auto bytes = base;
    const int mutations = static_cast<int>(rng.uniform(1, 4));
    for (int m = 0; m < mutations; ++m) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(bytes.size()) - 1));
      bytes[pos] ^= static_cast<std::uint8_t>(rng.uniform(1, 255));
    }
    try {
      const Apk apk = Apk::parse(bytes);
      for (const auto& dex : apk.dexes) exercise(dex);
      (void)apk.manifest.supported_range();
    } catch (const ParseError&) {
    }
  }
}

TEST(Fuzz, FrameworkImageTruncationSweep) {
  // The framework image is itself an SDEX container; a damaged on-disk
  // framework must fail exactly like a damaged app: ParseError, never a
  // contract abort or an out-of-bounds read.
  const auto base =
      emit_framework_image(FrameworkRepository::standard().spec(), 23)
          .serialize();
  for (std::size_t cut = 0; cut < base.size();
       cut += 1 + cut / 64) {  // denser probing near the header
    std::span<const std::uint8_t> window(base.data(), cut);
    try {
      const DexFile dex = DexFile::parse(window);
      exercise(dex);
    } catch (const ParseError&) {
    }
  }
}

TEST(Fuzz, FrameworkImageBitFlipSweep) {
  const auto base =
      emit_framework_image(FrameworkRepository::standard().spec(), 23)
          .serialize();
  Rng rng{0xADFULL};
  for (int trial = 0; trial < 300; ++trial) {
    auto bytes = base;
    const auto pos = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(bytes.size()) - 1));
    bytes[pos] ^= static_cast<std::uint8_t>(rng.uniform(1, 255));
    try {
      const DexFile dex = DexFile::parse(bytes);
      exercise(dex);
    } catch (const ParseError&) {
    }
  }
}

TEST(Fuzz, ApiDatabaseTruncationAndBitFlipSweep) {
  // The persisted ARM database (`saintdroid mine` output) gets the same
  // treatment: every damaged load either throws ParseError or yields a
  // database whose accessors are safe to call.
  const auto base =
      ApiDatabase::mine(FrameworkRepository::standard()).serialize();
  for (std::size_t cut = 0; cut < base.size(); cut += 1 + cut / 64) {
    std::span<const std::uint8_t> window(base.data(), cut);
    try {
      const ApiDatabase db = ApiDatabase::parse(window);
      (void)db.method_count();
      (void)db.callback_count();
      (void)db.permission_mapping_count();
    } catch (const ParseError&) {
    }
  }
  Rng rng{0xA2BULL};
  for (int trial = 0; trial < 300; ++trial) {
    auto bytes = base;
    const auto pos = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(bytes.size()) - 1));
    bytes[pos] ^= static_cast<std::uint8_t>(rng.uniform(1, 255));
    try {
      const ApiDatabase db = ApiDatabase::parse(bytes);
      (void)db.method_count();
      (void)db.callback_count();
      (void)db.permission_mapping_count();
    } catch (const ParseError&) {
    }
  }
}

TEST(Fuzz, AcceptedMutantsSurviveAnalysis) {
  // The strongest end-to-end property: if a mutated package parses, the
  // full analyzer must process it without crashing (unresolvable garbage
  // degrades conservatively, like unanalyzable late-bound code).
  AppBuilder b{"fuzz2", "com.fuzz.app2",
               FrameworkRepository::standard().spec()};
  b.sdk(16, 26);
  b.api_call(catalog::get_color_state_list());
  b.callback_override(catalog::on_attach_context());
  const auto base = b.build().apk.serialize();
  SaintDroid tool{FrameworkRepository::standard()};
  Rng rng{0xE2EULL};
  int analyzed = 0;
  for (int trial = 0; trial < 200; ++trial) {
    auto bytes = base;
    const auto pos = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(bytes.size()) - 1));
    bytes[pos] ^= static_cast<std::uint8_t>(rng.uniform(1, 255));
    try {
      const Apk apk = Apk::parse(bytes);
      const AnalysisResult result = tool.analyze(apk);
      (void)result.to_text(apk.name);
      ++analyzed;
    } catch (const ParseError&) {
    }
  }
  // Some mutants must survive parsing or the test proves nothing.
  EXPECT_GT(analyzed, 0);
}

// --- model-cache (.sdmc) poisoning -------------------------------------------
//
// The model cache is the one artifact a process trusts *instead of*
// recomputing, so a poisoned entry is the worst-case input: it must throw
// ParseError — never crash, and never load silently into a wrong model.
// sdmc_open's contract is throw-on-every-defect; the cache layers catch and
// re-mine. A small framework keeps the sweeps tractable.

/// Small framework shared by the sdmc sweeps (built once — mining even a
/// 30-class spec per test case would dominate the suite).
const FrameworkRepository& sdmc_fuzz_repo() {
  static const FrameworkRepository repo{[] {
    FrameworkConfig cfg;
    cfg.bulk_classes = 30;
    cfg.bulk_packages = 4;
    return cfg;
  }()};
  return repo;
}

SdmcKey sdmc_fuzz_key(SdmcKind kind, int level = 0) {
  SdmcKey key;
  key.kind = kind;
  key.fingerprint = sdmc_fuzz_repo().fingerprint();
  key.level = level;
  key.options = kind == SdmcKind::kSubstrateTables ? 1u : 0u;
  return key;
}

TEST(SdmcFuzz, EveryTruncationThrows) {
  const auto& repo = sdmc_fuzz_repo();
  const SdmcKey key = sdmc_fuzz_key(SdmcKind::kApiDatabase);
  const auto blob = sdmc_seal(key, ApiDatabase::mine(repo, 1).serialize());
  for (std::size_t cut = 0; cut < blob.size(); ++cut) {
    std::span<const std::uint8_t> window(blob.data(), cut);
    EXPECT_THROW((void)sdmc_open(window, key), ParseError) << "cut=" << cut;
  }
}

TEST(SdmcFuzz, EveryBitFlipThrows) {
  // Exhaustive over positions (one random flip per byte): wherever the
  // damage lands — magic, version, key, checksum, size, payload — the open
  // must throw. A flip that leaves the header fields valid is exactly what
  // the payload checksum exists to catch.
  const auto& repo = sdmc_fuzz_repo();
  const SdmcKey key = sdmc_fuzz_key(SdmcKind::kApiDatabase);
  const auto base = sdmc_seal(key, ApiDatabase::mine(repo, 1).serialize());
  Rng rng{0x5D3CULL};
  for (std::size_t pos = 0; pos < base.size(); ++pos) {
    auto blob = base;
    blob[pos] ^= static_cast<std::uint8_t>(rng.uniform(1, 255));
    EXPECT_THROW((void)sdmc_open(blob, key), ParseError) << "pos=" << pos;
  }
}

TEST(SdmcFuzz, VersionAndKeySplicesThrow) {
  // Splices model real-world staleness rather than random damage: entries
  // written by an older container version, for a different framework, a
  // different level, different options, or a different kind. Every one
  // must be refused at open.
  const auto& repo = sdmc_fuzz_repo();
  const auto payload = ApiDatabase::mine(repo, 1).serialize();
  const SdmcKey key = sdmc_fuzz_key(SdmcKind::kApiDatabase);

  {
    // Old container version (the header's version field is bytes 4..7).
    auto blob = sdmc_seal(key, payload);
    blob[4] = static_cast<std::uint8_t>(kSdmcFormatVersion - 1);
    EXPECT_THROW((void)sdmc_open(blob, key), ParseError);
    blob[4] = static_cast<std::uint8_t>(kSdmcFormatVersion + 1);
    EXPECT_THROW((void)sdmc_open(blob, key), ParseError);
  }
  {
    // Foreign framework: sealed under another fingerprint.
    SdmcKey foreign = key;
    foreign.fingerprint = "0123456789abcdef";
    EXPECT_THROW((void)sdmc_open(sdmc_seal(foreign, payload), key),
                 ParseError);
    // ...and the dual: opened with a foreign expectation.
    EXPECT_THROW((void)sdmc_open(sdmc_seal(key, payload), foreign),
                 ParseError);
  }
  {
    SdmcKey other = key;
    other.kind = SdmcKind::kSubstrateTables;
    EXPECT_THROW((void)sdmc_open(sdmc_seal(other, payload), key), ParseError);
  }
  {
    SdmcKey other = key;
    other.level = 23;
    EXPECT_THROW((void)sdmc_open(sdmc_seal(other, payload), key), ParseError);
  }
  {
    SdmcKey other = key;
    other.options = 1;
    EXPECT_THROW((void)sdmc_open(sdmc_seal(other, payload), key), ParseError);
  }
  {
    // Payload transplant: a valid header spliced onto another entry's valid
    // payload — the checksum no longer matches.
    const std::vector<std::uint8_t> other_payload(payload.size(), 0x5A);
    const auto donor = sdmc_seal(key, other_payload);
    auto blob = sdmc_seal(key, payload);
    std::copy(donor.end() - static_cast<std::ptrdiff_t>(payload.size()),
              donor.end(),
              blob.end() - static_cast<std::ptrdiff_t>(payload.size()));
    EXPECT_THROW((void)sdmc_open(blob, key), ParseError);
  }
  {
    // Trailing garbage after a well-formed container.
    auto blob = sdmc_seal(key, payload);
    blob.push_back(0);
    EXPECT_THROW((void)sdmc_open(blob, key), ParseError);
  }
}

TEST(SdmcFuzz, SemanticTableEveryTruncationThrows) {
  // The new kSemanticTable kind (container format v2) gets the full
  // treatment: a damaged semtab entry must throw at open — the cache then
  // re-derives — never load silently into a wrong change table.
  const auto& repo = sdmc_fuzz_repo();
  const SdmcKey key = sdmc_fuzz_key(SdmcKind::kSemanticTable);
  const auto payload = mine_semantic_table(repo.spec()).serialize();
  const auto blob = sdmc_seal(key, payload);
  for (std::size_t cut = 0; cut < blob.size(); ++cut) {
    std::span<const std::uint8_t> window(blob.data(), cut);
    EXPECT_THROW((void)sdmc_open(window, key), ParseError) << "cut=" << cut;
  }
  // Past the container, the inner SMTB decoder rejects every truncation
  // from its own bounds checks.
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    std::span<const std::uint8_t> window(payload.data(), cut);
    EXPECT_THROW((void)SemanticTable::parse(window), ParseError)
        << "cut=" << cut;
  }
}

TEST(SdmcFuzz, SemanticTableEveryBitFlipThrowsOrParsesCanonically) {
  const auto& repo = sdmc_fuzz_repo();
  const SdmcKey key = sdmc_fuzz_key(SdmcKind::kSemanticTable);
  const auto payload = mine_semantic_table(repo.spec()).serialize();
  // Sealed container: any flip anywhere must throw (payload checksum).
  const auto base = sdmc_seal(key, payload);
  Rng rng{0x5E317ABULL};
  for (std::size_t pos = 0; pos < base.size(); ++pos) {
    auto blob = base;
    blob[pos] ^= static_cast<std::uint8_t>(rng.uniform(1, 255));
    EXPECT_THROW((void)sdmc_open(blob, key), ParseError) << "pos=" << pos;
  }
  // Bare SMTB payload: a flip either throws or yields a table whose
  // re-serialization is a fixed point of the flipped input (the
  // canonical-order byte-compare inside parse guarantees exactly this),
  // with every accessor safe to call.
  for (std::size_t pos = 0; pos < payload.size(); ++pos) {
    auto bytes = payload;
    bytes[pos] ^= static_cast<std::uint8_t>(rng.uniform(1, 255));
    try {
      const SemanticTable table = SemanticTable::parse(bytes);
      EXPECT_EQ(table.serialize(), bytes);
      for (const auto& row : table.rows())
        (void)table.changes_for(row.method);
    } catch (const ParseError&) {
    }
  }
}

TEST(SdmcFuzz, SemanticTableVersionAndKindSplicesThrow) {
  // Staleness splices for the new kind: a semtab written by a pre-v2
  // container, an apidb entry renamed into the semtab slot (and the dual),
  // and a foreign-framework seal must all be refused at open.
  const auto& repo = sdmc_fuzz_repo();
  const auto payload = mine_semantic_table(repo.spec()).serialize();
  const SdmcKey key = sdmc_fuzz_key(SdmcKind::kSemanticTable);

  {
    auto blob = sdmc_seal(key, payload);
    blob[4] = static_cast<std::uint8_t>(kSdmcFormatVersion - 1);
    EXPECT_THROW((void)sdmc_open(blob, key), ParseError);
    blob[4] = static_cast<std::uint8_t>(kSdmcFormatVersion + 1);
    EXPECT_THROW((void)sdmc_open(blob, key), ParseError);
  }
  {
    // Kind splice both ways: the container's kind field, not the file
    // name, is authoritative.
    SdmcKey apidb = sdmc_fuzz_key(SdmcKind::kApiDatabase);
    EXPECT_THROW((void)sdmc_open(sdmc_seal(apidb, payload), key), ParseError);
    EXPECT_THROW((void)sdmc_open(sdmc_seal(key, payload), apidb), ParseError);
  }
  {
    SdmcKey foreign = key;
    foreign.fingerprint = "fedcba9876543210";
    EXPECT_THROW((void)sdmc_open(sdmc_seal(foreign, payload), key),
                 ParseError);
  }
  {
    // Trailing garbage after a well-formed SMTB payload must be refused —
    // the canonical byte-compare inside parse requires serialize(parse(b))
    // to reproduce b exactly, extra bytes included.
    auto bytes = payload;
    bytes.push_back(0);
    EXPECT_THROW((void)SemanticTable::parse(bytes), ParseError);
  }
}

TEST(SdmcFuzz, SubstrateTableTruncationRejectsInRebind) {
  // Past the container, the inner substrate-tables decoder gets the same
  // sweep: a truncated payload handed straight to the rebind constructor
  // must throw ParseError from its own bounds checks, never crash.
  const auto& repo = sdmc_fuzz_repo();
  const int level = 23;
  const auto base = repo.substrate(level)->serialize_tables();
  const DexFile& img = repo.image(level);
  for (std::size_t cut = 0; cut < base.size(); cut += 1 + cut / 64) {
    std::span<const std::uint8_t> window(base.data(), cut);
    EXPECT_THROW(
        (void)FrameworkSubstrate(img, level, SubstrateOptions{}, window),
        ParseError)
        << "cut=" << cut;
  }
}

TEST(SdmcFuzz, SubstrateTableBitFlipsRejectOrRebindSafely) {
  // Bit-flips may survive the structural checks (e.g. a flipped byte inside
  // a stored descriptor string still parses); an accepted rebind must then
  // be a fully-formed substrate — every class, method and edge traversable.
  const auto& repo = sdmc_fuzz_repo();
  const int level = 23;
  const auto base = repo.substrate(level)->serialize_tables();
  const DexFile& img = repo.image(level);
  Rng rng{0x5DB17ULL};
  int rebound = 0;
  for (int trial = 0; trial < 300; ++trial) {
    auto bytes = base;
    const auto pos = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(bytes.size()) - 1));
    bytes[pos] ^= static_cast<std::uint8_t>(rng.uniform(1, 255));
    try {
      const FrameworkSubstrate sub{img, level, SubstrateOptions{}, bytes};
      (void)sub.serialize_tables();  // walks every entry, method and edge
      ++rebound;
    } catch (const ParseError&) {
    }
  }
  // The checksum lives in the container, not here — some flips must
  // survive or this proves the decoder rejects everything.
  (void)rebound;
}

// --- journal line fuzzing ------------------------------------------------------
//
// The suite journal is the one format other *processes* hand us (shard
// journals cross machine boundaries before merge-journals reads them), so
// its line parsers get the same treatment as the binary decoders: any
// damaged line must yield nullopt or a fully-formed row — never a crash.

/// A row exercising every field: escapes in strings, a structured failure,
/// nonzero scores in all three families, and resource usage.
SuiteAppRow rich_row() {
  SuiteAppRow row;
  row.app = "fuzz-app \"quoted\"\n\tand\\slashed";
  row.completed = false;
  row.incomplete = true;
  row.failure_reason = "reason with \x01 control bytes";
  AnalysisFailure failure;
  failure.kind = FailureKind::kInjected;
  failure.phase = "model";
  failure.message = "injected fault at clvm.materialize";
  row.failure = failure;
  row.mismatch_count = 17;
  row.scores.api = {3, 1, 2};
  row.scores.apc = {0, 0, 5};
  row.scores.prm = {1, 0, 0};
  row.scores.sem = {2, 0, 1};  // nonzero: the sparse sem/sdc fields emit
  row.scores.sdc = {1, 1, 0};
  row.usage.seconds = 0.25;
  row.usage.peak_bytes = 123456;
  row.usage.loaded_classes = 42;
  return row;
}

/// Touches every field of an accepted row, so a malformed-but-accepted
/// parse that left dangling state would be caught by sanitizers.
void exercise_row(const SuiteAppRow& row) {
  (void)row.app.size();
  (void)row.failure_reason.size();
  if (row.failure.has_value()) {
    (void)failure_kind_name(row.failure->kind);
    (void)row.failure->phase.size();
    (void)row.failure->message.size();
  }
  (void)canonical_row_bytes(row);  // re-serialization must also be safe
}

TEST(JournalFuzz, EveryTruncationRejectsOrParses) {
  const std::string line = journal_line(rich_row());
  for (std::size_t cut = 0; cut <= line.size(); ++cut) {
    const auto parsed = parse_journal_line(line.substr(0, cut));
    if (parsed.has_value()) exercise_row(*parsed);
    // Only the full line is balanced JSON; every proper prefix is cut
    // mid-object and must be rejected.
    EXPECT_EQ(parsed.has_value(), cut == line.size());
  }
  JournalHeader header;
  header.corpus = "0123456789abcdef";
  header.shard_index = 2;
  header.shard_count = 7;
  header.tool = "fuzz";
  const std::string head = journal_header_line(header);
  for (std::size_t cut = 0; cut <= head.size(); ++cut) {
    const auto parsed = parse_journal_header(head.substr(0, cut));
    EXPECT_EQ(parsed.has_value(), cut == head.size());
  }
}

TEST(JournalFuzz, BitFlippedLinesNeverCrash) {
  const std::string base = journal_line(rich_row());
  Rng rng{0x70A57ULL};
  for (int trial = 0; trial < 600; ++trial) {
    std::string line = base;
    const int mutations = static_cast<int>(rng.uniform(1, 3));
    for (int m = 0; m < mutations; ++m) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(line.size()) - 1));
      line[pos] = static_cast<char>(
          static_cast<unsigned char>(line[pos]) ^
          static_cast<unsigned char>(rng.uniform(1, 255)));
    }
    const auto parsed = parse_journal_line(line);
    if (parsed.has_value()) exercise_row(*parsed);
    (void)parse_journal_header(line);  // header probe must be equally safe
  }
}

TEST(JournalFuzz, InterleavedLineSplicesNeverCrash) {
  // Two processes writing one journal without the append discipline would
  // interleave arbitrary line fragments; the reader must shrug them off.
  const std::string a = journal_line(rich_row());
  SuiteAppRow other;
  other.app = "other-app";
  other.mismatch_count = 2;
  const std::string b = journal_line(other);
  Rng rng{0x5B11CEULL};
  for (int trial = 0; trial < 600; ++trial) {
    const auto cut_a = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(a.size())));
    const auto cut_b = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(b.size())));
    const std::string spliced = a.substr(0, cut_a) + b.substr(cut_b);
    const auto parsed = parse_journal_line(spliced);
    if (parsed.has_value()) exercise_row(*parsed);
  }
}

// --- Serve wire protocol and state-dir robustness -------------------------
//
// The daemon reads request lines from untrusted clients and re-reads its
// own state directory after a crash; both surfaces get the journal
// treatment: every truncation and bit-flip is a structured error
// (ParseError or nullopt), never a crash, and corrupt state-dir lines are
// skipped without poisoning the parseable ones around them.

std::string rich_serve_response_line() {
  ServeResponse response;
  response.id = "r-fuzz";
  response.status = ServeStatus::kDone;
  response.fingerprint = "00f1ce00deadbeef";
  response.cached = true;
  response.row = rich_row();
  return serve_response_line(response);
}

TEST(ServeFuzz, RequestTruncationSweepThrowsStructuredErrors) {
  ServeRequest request;
  request.id = "r\"1\\x";  // JSON-hostile id must round-trip
  request.apk_path = "/tmp/weird \"path\"/app.apk";
  request.deadline_seconds = 2.5;
  const std::string line = serve_request_line(request);
  const ServeRequest full = parse_serve_request(line);
  EXPECT_EQ(full.id, request.id);
  EXPECT_EQ(full.apk_path, request.apk_path);
  for (std::size_t cut = 0; cut < line.size(); ++cut)
    EXPECT_THROW((void)parse_serve_request(line.substr(0, cut)), ParseError);
}

TEST(ServeFuzz, RequestBitFlipsNeverCrash) {
  const std::string base =
      serve_request_line({"r1", "/corpus/app-0001.apk", 1.0});
  Rng rng{0x5EF1AULL};
  for (int trial = 0; trial < 600; ++trial) {
    std::string line = base;
    const int mutations = static_cast<int>(rng.uniform(1, 3));
    for (int m = 0; m < mutations; ++m) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(line.size()) - 1));
      line[pos] = static_cast<char>(
          static_cast<unsigned char>(line[pos]) ^
          static_cast<unsigned char>(rng.uniform(1, 255)));
    }
    try {
      const ServeRequest parsed = parse_serve_request(line);
      (void)parsed.id.size();  // survivors must be usable
      (void)parsed.apk_path.size();
    } catch (const ParseError&) {
      // Structured rejection — the daemon answers "bad-request".
    }
  }
}

TEST(ServeFuzz, ResponseAndStateLineSweepsRejectOrParse) {
  const std::string response = rich_serve_response_line();
  const std::string accepted = accepted_request_line(
      {"r1", "00f1ce00deadbeef", "app-0001", "/corpus/app-0001.apk"});
  const std::string result = result_line("00f1ce00deadbeef", rich_row());
  for (const std::string& line : {response, accepted, result}) {
    for (std::size_t cut = 0; cut < line.size(); ++cut) {
      const auto prefix = line.substr(0, cut);
      EXPECT_FALSE(parse_serve_response(prefix).has_value());
      EXPECT_FALSE(parse_accepted_request(prefix).has_value());
      EXPECT_FALSE(parse_result_line(prefix).has_value());
    }
  }
  // The full lines parse through their own parser, and the merged-key rows
  // survive the exercise_row treatment.
  const auto parsed_response = parse_serve_response(response);
  ASSERT_TRUE(parsed_response.has_value());
  ASSERT_TRUE(parsed_response->row.has_value());
  exercise_row(*parsed_response->row);
  ASSERT_TRUE(parse_accepted_request(accepted).has_value());
  const auto parsed_result = parse_result_line(result);
  ASSERT_TRUE(parsed_result.has_value());
  exercise_row(parsed_result->row);
}

TEST(ServeFuzz, ResponseBitFlipsNeverCrash) {
  const std::string base = rich_serve_response_line();
  Rng rng{0x5EF2BULL};
  for (int trial = 0; trial < 600; ++trial) {
    std::string line = base;
    const int mutations = static_cast<int>(rng.uniform(1, 3));
    for (int m = 0; m < mutations; ++m) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(line.size()) - 1));
      line[pos] = static_cast<char>(
          static_cast<unsigned char>(line[pos]) ^
          static_cast<unsigned char>(rng.uniform(1, 255)));
    }
    if (const auto parsed = parse_serve_response(line);
        parsed.has_value() && parsed->row.has_value())
      exercise_row(*parsed->row);
    if (const auto parsed = parse_accepted_request(line)) {
      (void)parsed->fingerprint.size();
    }
    if (const auto parsed = parse_result_line(line)) exercise_row(parsed->row);
  }
}

TEST(ServeFuzz, CorruptStateDirFilesLoadWithoutCrashing) {
  // A state directory mauled by a crash: torn tails, bit-flipped lines,
  // binary garbage spliced between valid records. RequestJournal::load and
  // the ResultCache constructor must skip the damage and keep the rest.
  const std::string root = ::testing::TempDir() + "serve_fuzz_state";
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);
  const AcceptedRequest keep{"r-keep", "1111222233334444", "app-keep",
                             "/corpus/app-keep.apk"};
  const std::string good_result = result_line("1111222233334444", rich_row());
  Rng rng{0x57A7EULL};
  for (int trial = 0; trial < 40; ++trial) {
    std::string requests = accepted_request_line(keep) + "\n";
    std::string results = good_result + "\n";
    // Damage: a bit-flipped copy, raw garbage, and a torn tail.
    std::string mangled = accepted_request_line(
        {"r-bad", "5555666677778888", "app-bad", "/corpus/app-bad.apk"});
    const auto pos = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(mangled.size()) - 1));
    mangled[pos] = static_cast<char>(
        static_cast<unsigned char>(mangled[pos]) ^
        static_cast<unsigned char>(rng.uniform(1, 255)));
    requests += mangled + "\n";
    for (int g = 0; g < 8; ++g)
      requests += static_cast<char>(rng.uniform(1, 255));
    requests += "\n";
    requests += accepted_request_line(keep).substr(
        0, static_cast<std::size_t>(
               rng.uniform(0, static_cast<std::int64_t>(
                                  accepted_request_line(keep).size()))));
    results += good_result.substr(
        0, static_cast<std::size_t>(rng.uniform(
               0, static_cast<std::int64_t>(good_result.size()))));
    {
      std::ofstream out{root + "/requests.jsonl",
                        std::ios::binary | std::ios::trunc};
      out << requests;
      std::ofstream res{root + "/results.jsonl",
                        std::ios::binary | std::ios::trunc};
      res << results;
    }
    const auto loaded = RequestJournal::load(root + "/requests.jsonl");
    ASSERT_GE(loaded.size(), 1u);
    EXPECT_EQ(loaded[0].id, keep.id);
    // The cache ctor seals the torn tail and keeps appending afterwards.
    ResultCache cache{root + "/results.jsonl"};
    ASSERT_TRUE(cache.find("1111222233334444").has_value());
    cache.put("9999aaaabbbbcccc", rich_row());
    ResultCache reloaded{root + "/results.jsonl"};
    EXPECT_TRUE(reloaded.find("9999aaaabbbbcccc").has_value());
  }
  std::filesystem::remove_all(root);
}

TEST(JournalFuzz, RandomizedRowsRoundTripThroughTheirLine) {
  Rng rng{0xD0E5ULL};
  const auto random_text = [&rng]() {
    std::string text(static_cast<std::size_t>(rng.uniform(0, 24)), '\0');
    for (auto& c : text) {
      // Bias toward JSON-hostile bytes: quotes, backslashes, newlines and
      // other control characters; never NUL.
      if (rng.chance(0.3)) {
        static const char hostile[] = {'"', '\\', '\n', '\t', '\r',
                                       '\x01', '\x1f', '{', '}', ','};
        c = hostile[rng.uniform(0, 9)];
      } else {
        c = static_cast<char>(rng.uniform(32, 126));
      }
    }
    return text;
  };
  static const FailureKind kinds[] = {FailureKind::kParse,
                                      FailureKind::kResolve,
                                      FailureKind::kConfig,
                                      FailureKind::kInjected,
                                      FailureKind::kInternal};
  for (int trial = 0; trial < 300; ++trial) {
    SuiteAppRow row;
    row.app = random_text();
    row.completed = rng.chance(0.7);
    row.incomplete = rng.chance(0.2);
    row.failure_reason = random_text();
    if (!row.completed || rng.chance(0.2)) {
      AnalysisFailure failure;
      failure.kind = kinds[rng.uniform(0, 4)];
      failure.phase = random_text();
      failure.message = random_text();
      row.failure = failure;  // error-outcome rows are journal citizens too
    }
    row.mismatch_count = static_cast<std::size_t>(rng.uniform(0, 1 << 20));
    const auto score = [&rng] {
      return Score{static_cast<std::size_t>(rng.uniform(0, 1000)),
                   static_cast<std::size_t>(rng.uniform(0, 1000)),
                   static_cast<std::size_t>(rng.uniform(0, 1000))};
    };
    row.scores.api = score();
    row.scores.apc = score();
    row.scores.prm = score();
    // Half the trials leave sem/sdc all-zero to exercise the sparse-emit
    // path (absent fields must read back as zeros and re-emit absent).
    row.scores.sem = rng.chance(0.5) ? score() : Score{};
    row.scores.sdc = rng.chance(0.5) ? score() : Score{};
    row.usage.seconds = rng.uniform01() * 1000.0;
    // JSON numbers ride through a double: integers round-trip exactly up
    // to 2^53, which is the journal's stated integer range (a peak_bytes
    // beyond it would claim >9 PB of resident memory).
    row.usage.peak_bytes =
        static_cast<std::uint64_t>(rng.uniform(0, (1LL << 53) - 1));
    row.usage.loaded_classes =
        static_cast<std::uint64_t>(rng.uniform(0, 1 << 30));

    const std::string line = journal_line(row);
    EXPECT_EQ(line.find('\n'), std::string::npos);
    const auto parsed = parse_journal_line(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    EXPECT_EQ(parsed->app, row.app);
    EXPECT_EQ(parsed->completed, row.completed);
    EXPECT_EQ(parsed->incomplete, row.incomplete);
    EXPECT_EQ(parsed->failure_reason, row.failure_reason);
    ASSERT_EQ(parsed->failure.has_value(), row.failure.has_value());
    if (row.failure.has_value()) {
      EXPECT_EQ(parsed->failure->kind, row.failure->kind);
      EXPECT_EQ(parsed->failure->phase, row.failure->phase);
      EXPECT_EQ(parsed->failure->message, row.failure->message);
    }
    EXPECT_EQ(parsed->mismatch_count, row.mismatch_count);
    EXPECT_EQ(parsed->scores.api.tp, row.scores.api.tp);
    EXPECT_EQ(parsed->scores.api.fp, row.scores.api.fp);
    EXPECT_EQ(parsed->scores.api.fn, row.scores.api.fn);
    EXPECT_EQ(parsed->scores.apc.tp, row.scores.apc.tp);
    EXPECT_EQ(parsed->scores.apc.fp, row.scores.apc.fp);
    EXPECT_EQ(parsed->scores.apc.fn, row.scores.apc.fn);
    EXPECT_EQ(parsed->scores.prm.tp, row.scores.prm.tp);
    EXPECT_EQ(parsed->scores.prm.fp, row.scores.prm.fp);
    EXPECT_EQ(parsed->scores.prm.fn, row.scores.prm.fn);
    EXPECT_EQ(parsed->scores.sem.tp, row.scores.sem.tp);
    EXPECT_EQ(parsed->scores.sem.fp, row.scores.sem.fp);
    EXPECT_EQ(parsed->scores.sem.fn, row.scores.sem.fn);
    EXPECT_EQ(parsed->scores.sdc.tp, row.scores.sdc.tp);
    EXPECT_EQ(parsed->scores.sdc.fp, row.scores.sdc.fp);
    EXPECT_EQ(parsed->scores.sdc.fn, row.scores.sdc.fn);
    EXPECT_EQ(parsed->usage.peak_bytes, row.usage.peak_bytes);
    EXPECT_EQ(parsed->usage.loaded_classes, row.usage.loaded_classes);
    // seconds crosses a 6-significant-digit text representation; it is the
    // one field the contract only carries approximately (and the one field
    // canonical_row_bytes zeroes out of byte-identity comparisons).
    EXPECT_NEAR(parsed->usage.seconds, row.usage.seconds,
                row.usage.seconds * 1e-5 + 1e-9);
    // Serialization is a fixed point: re-emitting the parsed row must
    // reproduce the exact line (this is what merge dedup relies on).
    EXPECT_EQ(journal_line(*parsed), line);
  }
}

// --- work-stealing lease poisoning ---------------------------------------------
//
// The lease containers cross process (and host) boundaries like the .sdmc
// cache does, so they get the same sweeps: every truncation, flip and
// splice must throw ParseError. The workdir protocol then turns those
// throws into *reclaims* — a corrupt lease file on disk is reissued, never
// crashed on, and never silently assigns work (the queue, not the lease
// file, says which apps a lease covers).

/// A small but fully-populated work queue for the sweeps.
WorkQueue lease_fuzz_queue() {
  WorkQueue queue;
  queue.corpus = "feedfacefeedface";
  queue.tool = "saintdroid";
  for (int i = 0; i < 5; ++i) {
    WorkItem item;
    item.name = "app-" + std::to_string(i);
    item.path = "/corpus/app-" + std::to_string(i) + ".apk";
    item.cost = static_cast<std::uint64_t>(1 + i * 17);
    queue.items.push_back(std::move(item));
  }
  queue.leases = plan_leases(queue.items, 2);
  return queue;
}

LeaseState lease_fuzz_state() {
  LeaseState state;
  state.lease_id = 3;
  state.generation = 2;
  state.worker = "host-1/w0";
  state.heartbeat = 1'700'000'000ULL;
  return state;
}

TEST(LeaseFuzz, EveryWorkQueueTruncationThrows) {
  const auto blob = lease_fuzz_queue().serialize();
  for (std::size_t cut = 0; cut < blob.size(); ++cut) {
    std::span<const std::uint8_t> window(blob.data(), cut);
    EXPECT_THROW((void)WorkQueue::parse(window), ParseError) << "cut=" << cut;
  }
}

TEST(LeaseFuzz, EveryLeaseStateTruncationThrows) {
  const auto blob = lease_fuzz_state().serialize();
  for (std::size_t cut = 0; cut < blob.size(); ++cut) {
    std::span<const std::uint8_t> window(blob.data(), cut);
    EXPECT_THROW((void)LeaseState::parse(window), ParseError)
        << "cut=" << cut;
  }
}

TEST(LeaseFuzz, EveryBitFlipThrows) {
  // One random flip per byte position, both containers. Wherever the
  // damage lands — magic, version, checksum, size, payload — the parse
  // must throw; a flip the header checks miss is what the payload
  // checksum exists to catch.
  const auto queue_base = lease_fuzz_queue().serialize();
  Rng rng{0x1EA5EULL};
  for (std::size_t pos = 0; pos < queue_base.size(); ++pos) {
    auto blob = queue_base;
    blob[pos] ^= static_cast<std::uint8_t>(rng.uniform(1, 255));
    EXPECT_THROW((void)WorkQueue::parse(blob), ParseError) << "pos=" << pos;
  }
  const auto state_base = lease_fuzz_state().serialize();
  for (std::size_t pos = 0; pos < state_base.size(); ++pos) {
    auto blob = state_base;
    blob[pos] ^= static_cast<std::uint8_t>(rng.uniform(1, 255));
    EXPECT_THROW((void)LeaseState::parse(blob), ParseError) << "pos=" << pos;
  }
}

TEST(LeaseFuzz, MagicVersionAndSpliceDefectsThrow) {
  const auto queue_blob = lease_fuzz_queue().serialize();
  const auto state_blob = lease_fuzz_state().serialize();
  // Cross-container splice: each container refuses the other's magic.
  EXPECT_THROW((void)WorkQueue::parse(state_blob), ParseError);
  EXPECT_THROW((void)LeaseState::parse(queue_blob), ParseError);
  {
    // Version skew (the version field is bytes 4..7).
    auto blob = queue_blob;
    blob[4] = static_cast<std::uint8_t>(kDistFormatVersion + 1);
    EXPECT_THROW((void)WorkQueue::parse(blob), ParseError);
  }
  {
    // Trailing garbage after a well-formed container.
    auto blob = state_blob;
    blob.push_back(0);
    EXPECT_THROW((void)LeaseState::parse(blob), ParseError);
  }
  {
    // Payload transplant: this queue's header and checksum over that
    // queue's payload bytes.
    WorkQueue other = lease_fuzz_queue();
    other.items[0].name = "app-evil";
    const auto donor = other.serialize();
    auto blob = queue_blob;
    std::copy(donor.begin() + 16, donor.end() - 8, blob.begin() + 16);
    EXPECT_THROW((void)WorkQueue::parse(blob), ParseError);
  }
}

TEST(LeaseFuzz, CorruptLeaseFilesAreReclaimedNeverCrashOrDoubleAssign) {
  // On-disk sweep of the reclaim contract: scribble over claim files in
  // every style and verify the protocol's response is always "reissue",
  // never a crash and never a silent double assignment.
  const std::string root = ::testing::TempDir() + "lease_fuzz_wd";
  std::filesystem::remove_all(root);
  const WorkDir dir{root};
  WorkQueue queue = lease_fuzz_queue();
  queue.leases = plan_leases(queue.items, 5);  // one lease, five apps
  queue.leases[0].id = 0;
  dir.publish(queue, 100);

  const std::vector<std::string> corruptions{
      "",                                   // truncated to nothing
      "short",                              // truncated container
      std::string(64, '\xFF'),              // bit noise
      std::string("SDLS then garbage"),     // magic prefix, torn payload
  };
  const std::string claim_path = root + "/leases/lease-000000.claim";
  for (std::size_t c = 0; c < corruptions.size(); ++c) {
    SCOPED_TRACE("corruption=" + std::to_string(c));
    const auto claim = dir.claim_next("w0", 100);
    ASSERT_TRUE(claim.has_value());
    EXPECT_EQ(claim->lease_id, 0);
    // No double assignment while the (soon to be corrupt) claim stands.
    EXPECT_FALSE(dir.claim_next("w1", 100).has_value());
    {
      std::ofstream out{claim_path, std::ios::binary | std::ios::trunc};
      out << corruptions[c];
    }
    // A corrupt claim is expired by definition, whatever the TTL.
    EXPECT_EQ(dir.reclaim_expired(1'000'000, 100), 1);
    EXPECT_EQ(dir.status().open, 1);
  }

  // After the gauntlet the lease still completes exactly once.
  const auto final_claim = dir.claim_next("w2", 200);
  ASSERT_TRUE(final_claim.has_value());
  EXPECT_TRUE(dir.complete(*final_claim));
  EXPECT_TRUE(dir.status().finished());
  EXPECT_EQ(dir.done_states().size(), 1u);
  std::filesystem::remove_all(root);
}

TEST(LeaseFuzz, ForgedDuplicateOpenConvergesToOneDoneLease) {
  // A crashed reclaimer (or an attacker replaying files) can leave a lease
  // with BOTH an open and a claim file. The protocol must converge: the
  // ghost is claimable, execution may be repeated, but the census ends at
  // exactly one done lease and claimants never crash.
  const std::string root = ::testing::TempDir() + "lease_forge_wd";
  std::filesystem::remove_all(root);
  const WorkDir dir{root};
  WorkQueue queue = lease_fuzz_queue();
  queue.leases = plan_leases(queue.items, 5);
  dir.publish(queue, 100);

  const auto claim = dir.claim_next("w0", 100);
  ASSERT_TRUE(claim.has_value());
  {
    // Forge a ghost .open for the already-claimed lease.
    LeaseState ghost;
    ghost.lease_id = 0;
    ghost.heartbeat = 100;
    const auto bytes = ghost.serialize();
    std::ofstream out{root + "/leases/lease-000000.open",
                      std::ios::binary | std::ios::trunc};
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  // The ghost is claimed (atomically replacing the live claim file — the
  // loser's complete() then fails, which is the documented lost-lease
  // path), the winner completes, and the census converges to one done.
  const auto dup = dir.claim_next("w1", 101);
  ASSERT_TRUE(dup.has_value());
  EXPECT_EQ(dup->lease_id, 0);
  EXPECT_TRUE(dir.complete(*dup));
  EXPECT_FALSE(dir.complete(*claim));
  EXPECT_TRUE(dir.status().finished());
  EXPECT_EQ(dir.done_states().size(), 1u);
  std::filesystem::remove_all(root);
}

// --- incremental-fact-cache (.sdmc kind 4) poisoning -------------------------
//
// The subject is a *real* entry: a facade run over a small version-chain
// app stores one, and the sweeps damage exactly those production bytes.
// The contract has two layers — every container/payload defect throws
// ParseError, and IncrCache::try_load converts every defect into a silent
// miss so the engine's only failure mode is a counted full-analysis
// fallback: never a crash, never a stale finding.

VersionChainConfig incr_fuzz_chain() {
  VersionChainConfig cfg;
  cfg.slots = 5;
  cfg.breadth = 3;
  cfg.target_loc = 120;  // small entry: the truncation sweep is quadratic
  return cfg;
}

struct HarvestedEntry {
  std::string dir;
  std::string path;
  SdmcKey key;
  std::vector<std::uint8_t> blob;     ///< sealed bytes as stored on disk
  std::vector<std::uint8_t> payload;  ///< unsealed entry payload
};

/// Analyzes chain version 0 through a fresh cache and returns the single
/// entry the facade stored.
HarvestedEntry harvest_incr_entry(const std::string& name) {
  const auto& repo = sdmc_fuzz_repo();
  HarvestedEntry out;
  out.dir = ::testing::TempDir() + "incr_fuzz_" + name;
  std::filesystem::remove_all(out.dir);

  SaintDroidOptions options;
  options.incr_cache = std::make_shared<const IncrCache>(out.dir);
  SaintDroid tool{repo, options};
  const BenchApp v0 = generate_chain_version(repo, incr_fuzz_chain(), 0, 0);
  const AnalysisResult result = tool.analyze(v0.apk);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.incremental.attempted, 1u);  // cold miss, then store

  for (const auto& file : std::filesystem::directory_iterator(out.dir))
    out.path = file.path().string();
  EXPECT_FALSE(out.path.empty());
  const auto bytes = read_file_bytes(out.path);
  EXPECT_TRUE(bytes.has_value());
  out.blob = *bytes;

  // Reconstruct the key from the filename's "-L<level>" tag.
  const std::size_t tag = out.path.rfind("-L");
  const int level = std::stoi(out.path.substr(tag + 2));
  out.key.kind = SdmcKind::kIncrementalFacts;
  out.key.fingerprint = repo.fingerprint();
  out.key.level = level;
  out.key.options = 0;
  out.payload = sdmc_open(out.blob, out.key);
  return out;
}

TEST(IncrCacheFuzz, EveryTruncationThrows) {
  const HarvestedEntry entry = harvest_incr_entry("trunc");
  for (std::size_t cut = 0; cut < entry.blob.size(); ++cut) {
    std::span<const std::uint8_t> window(entry.blob.data(), cut);
    EXPECT_THROW((void)sdmc_open(window, entry.key), ParseError)
        << "cut=" << cut;
  }
  // Past the container, the entry codec rejects every truncation from its
  // own bounds checks (and the full payload still round-trips).
  for (std::size_t cut = 0; cut < entry.payload.size(); ++cut) {
    std::span<const std::uint8_t> window(entry.payload.data(), cut);
    EXPECT_THROW((void)parse_incr_entry(window), ParseError) << "cut=" << cut;
  }
  EXPECT_EQ(serialize_incr_entry(parse_incr_entry(entry.payload)),
            entry.payload);
  std::filesystem::remove_all(entry.dir);
}

TEST(IncrCacheFuzz, EveryBitFlipThrows) {
  // One random flip per byte of the sealed container: wherever the damage
  // lands, the open must throw (the payload checksum catches whatever the
  // header fields don't).
  const HarvestedEntry entry = harvest_incr_entry("flip");
  Rng rng{0x1C4FACEULL};
  for (std::size_t pos = 0; pos < entry.blob.size(); ++pos) {
    auto blob = entry.blob;
    blob[pos] ^= static_cast<std::uint8_t>(rng.uniform(1, 255));
    EXPECT_THROW((void)sdmc_open(blob, entry.key), ParseError)
        << "pos=" << pos;
  }
  std::filesystem::remove_all(entry.dir);
}

TEST(IncrCacheFuzz, VersionKindAndFingerprintSplicesThrow) {
  // Staleness, not random damage: entries written by an older container
  // version, sealed under another kind (or another kind's bytes renamed
  // into this slot), for a foreign framework, or at a different level —
  // plus a trailing-byte splice past the declared payload end.
  const HarvestedEntry entry = harvest_incr_entry("splice");
  {
    auto blob = sdmc_seal(entry.key, entry.payload);
    blob[4] = static_cast<std::uint8_t>(kSdmcFormatVersion - 1);
    EXPECT_THROW((void)sdmc_open(blob, entry.key), ParseError);
  }
  {
    SdmcKey foreign = entry.key;
    foreign.fingerprint[0] = foreign.fingerprint[0] == 'f' ? '0' : 'f';
    EXPECT_THROW((void)sdmc_open(sdmc_seal(foreign, entry.payload), entry.key),
                 ParseError);
  }
  {
    SdmcKey other = entry.key;
    other.level += 1;
    EXPECT_THROW((void)sdmc_open(sdmc_seal(other, entry.payload), entry.key),
                 ParseError);
  }
  {
    // An apidb blob renamed into the incremental slot, and the dual.
    SdmcKey apidb = entry.key;
    apidb.kind = SdmcKind::kApiDatabase;
    EXPECT_THROW((void)sdmc_open(sdmc_seal(apidb, entry.payload), entry.key),
                 ParseError);
    EXPECT_THROW((void)sdmc_open(entry.blob, apidb), ParseError);
  }
  {
    auto payload = entry.payload;
    payload.push_back(0);  // trailing garbage past the declared structure
    EXPECT_THROW((void)parse_incr_entry(payload), ParseError);
  }
  std::filesystem::remove_all(entry.dir);
}

TEST(IncrCacheFuzz, DamagedEntryFallsBackSilentlyAndNeverStales) {
  // The engine-level contract: whatever is on disk, try_load yields a
  // miss (never throws), the next analyze() takes the counted fallback,
  // and its findings are byte-identical to a cache-less run — a damaged
  // cache can cost work, never correctness. Each damaged analyze() also
  // re-stores a fresh entry, so every variant re-damages the file.
  const auto& repo = sdmc_fuzz_repo();
  const HarvestedEntry entry = harvest_incr_entry("fallback");
  const BenchApp v1 = generate_chain_version(repo, incr_fuzz_chain(), 0, 1);

  SaintDroid scratch{repo};
  const std::string want = canonical_row_bytes(analyze_app_row(scratch, v1));

  SaintDroidOptions options;
  options.incr_cache = std::make_shared<const IncrCache>(entry.dir);
  SaintDroid tool{repo, scratch.shared_database(), options};

  const auto damage = [&](int variant) {
    auto bytes = entry.blob;
    switch (variant) {
      case 0:
        bytes.resize(bytes.size() / 2);  // truncated write
        break;
      case 1:
        bytes[bytes.size() / 3] ^= 0x40;  // media rot
        break;
      case 2:
        bytes.assign(64, 0xAB);  // unrelated garbage
        break;
      default:
        bytes.clear();  // zero-length file
        break;
    }
    write_file_atomic(entry.path, bytes);
  };

  for (int variant = 0; variant < 4; ++variant) {
    SCOPED_TRACE("variant " + std::to_string(variant));
    damage(variant);
    EXPECT_FALSE(options.incr_cache
                     ->try_load(repo, v1.apk.name, entry.key.level)
                     .has_value());
    const SuiteAppRow row = analyze_app_row(tool, v1);
    EXPECT_TRUE(row.completed);
    EXPECT_EQ(row.incr.attempted, 1u);
    EXPECT_EQ(row.incr.hits, 0u);
    EXPECT_EQ(row.incr.fallbacks, 1u);
    EXPECT_EQ(canonical_row_bytes(row), want);
  }

  // And with the re-stored (healthy) entry: a hit, same bytes.
  const SuiteAppRow hit = analyze_app_row(tool, v1);
  EXPECT_EQ(hit.incr.hits, 1u);
  EXPECT_EQ(canonical_row_bytes(hit), want);
  std::filesystem::remove_all(entry.dir);
}

}  // namespace
}  // namespace saintdroid
