// Tests for the dynamic verifier: crash semantics per device level, guard
// behaviour (including runtime-generated guards that refute static false
// alarms), permission rules across the API-23 boundary, skipped-callback
// detection, and a differential property tying execution to the static
// ground truth over the benchmark suite.
#include <gtest/gtest.h>

#include <unordered_set>

#include "adf/repository.hpp"
#include "core/saintdroid.hpp"
#include "dynamic/interpreter.hpp"
#include "workload/app_builder.hpp"
#include "workload/benchmarks.hpp"

namespace saintdroid {
namespace {

namespace cat = catalog;

const FrameworkRepository& repo() { return FrameworkRepository::standard(); }

AppBuilder make_builder(const char* name, int min_sdk, int target_sdk) {
  AppBuilder b{name, std::string{"com.dyn."} + name, repo().spec()};
  b.sdk(min_sdk, target_sdk);
  return b;
}

ExecutionResult run_at(const Apk& apk, int level,
                       bool user_grants = false, bool user_revokes = true) {
  Interpreter interp{apk, repo()};
  DeviceConfig device;
  device.level = level;
  device.user_grants_requests = user_grants;
  device.user_revokes_dangerous = user_revokes;
  return interp.run(device);
}

// --- API invocation crashes -----------------------------------------------------

TEST(Dynamic, MissingApiCrashesBelowIntroduction) {
  auto b = make_builder("crash", 14, 27);
  b.api_call(cat::get_color_state_list());  // introduced at 23
  auto built = b.build();
  const ExecutionResult at21 = run_at(built.apk, 21);
  ASSERT_EQ(at21.crashes.size(), 1u);
  EXPECT_EQ(at21.crashes[0].kind, CrashEvent::Kind::kNoSuchMethod);
  EXPECT_EQ(at21.crashes[0].missing_api.name, "getColorStateList");
  EXPECT_FALSE(run_at(built.apk, 23).crashed());
  EXPECT_FALSE(run_at(built.apk, 29).crashed());
}

TEST(Dynamic, RemovedApiCrashesAfterRemoval) {
  auto b = make_builder("removed", 14, 22);
  b.api_call(cat::http_client_execute());  // removed at 23
  auto built = b.build();
  EXPECT_FALSE(run_at(built.apk, 22).crashed());
  const ExecutionResult at23 = run_at(built.apk, 23);
  ASSERT_TRUE(at23.crashed());
  EXPECT_EQ(at23.crashes[0].missing_api.name, "execute");
}

TEST(Dynamic, GuardsActuallyProtect) {
  auto b = make_builder("guards", 14, 27);
  b.api_call(cat::get_color_state_list(), GuardMode::kLocal);
  b.api_call(cat::get_color_state_list(), GuardMode::kLocalViaRegister);
  b.api_call(cat::get_color_state_list(), GuardMode::kLocalViaField);
  b.api_call(cat::get_color_state_list(), GuardMode::kCrossMethod);
  auto built = b.build();
  for (const int level : {14, 20, 22, 23, 27, 29})
    EXPECT_FALSE(run_at(built.apk, level).crashed()) << level;
}

TEST(Dynamic, RuntimeGeneratedGuardProtects) {
  // The static analyzer must flag this site (the guard is invisible), but
  // the runtime-generated helper exists at runtime and protects it: the
  // static report is a confirmed false alarm.
  auto b = make_builder("hidden", 14, 27);
  b.api_call(cat::get_color_state_list(), GuardMode::kHidden);
  auto built = b.build();
  SaintDroid tool{repo()};
  EXPECT_EQ(tool.analyze(built.apk).count(MismatchKind::kApiInvocation), 1u);
  for (const int level : {14, 22, 23, 29})
    EXPECT_FALSE(run_at(built.apk, level).crashed()) << level;
}

TEST(Dynamic, DeadCodeNeverRuns) {
  auto b = make_builder("dead", 14, 27);
  b.api_call(cat::get_color_state_list(), GuardMode::kNone,
             Placement::kDeadCode);
  auto built = b.build();
  EXPECT_FALSE(run_at(built.apk, 14).crashed());
}

TEST(Dynamic, LateBoundAndReflectedCodeRuns) {
  auto b = make_builder("late", 14, 27);
  b.api_call(cat::get_color_state_list(), GuardMode::kNone,
             Placement::kSecondaryDex);
  b.api_call(cat::is_destroyed(), GuardMode::kNone, Placement::kReflection);
  auto built = b.build();
  const ExecutionResult at14 = run_at(built.apk, 14);
  std::unordered_set<std::string> missing;
  for (const auto& c : at14.crashes) missing.insert(c.missing_api.name);
  EXPECT_TRUE(missing.contains("getColorStateList"));
  EXPECT_TRUE(missing.contains("isDestroyed"));
}

TEST(Dynamic, MissingClassCrashesAtConstructor) {
  auto b = make_builder("ctor", 14, 27);
  b.api_call(cat::notification_channel_ctor());  // class exists from 26
  auto built = b.build();
  const ExecutionResult at25 = run_at(built.apk, 25);
  ASSERT_TRUE(at25.crashed());
  EXPECT_EQ(at25.crashes[0].missing_api.class_name,
            "android/app/NotificationChannel");
  EXPECT_FALSE(run_at(built.apk, 26).crashed());
}

// --- permission crashes ------------------------------------------------------------

TEST(Dynamic, RequestMismatchCrashesOnRuntimeDevices) {
  auto b = make_builder("prm", 19, 26);
  b.permission_use(cat::camera_open());
  auto built = b.build();
  EXPECT_FALSE(run_at(built.apk, 22).crashed());  // install-time grant
  const ExecutionResult at26 = run_at(built.apk, 26);
  ASSERT_TRUE(at26.crashed());
  EXPECT_EQ(at26.crashes[0].kind, CrashEvent::Kind::kSecurityException);
  EXPECT_EQ(at26.crashes[0].permission, "android.permission.CAMERA");
}

TEST(Dynamic, ProtocolPlusGrantingUserIsSafe) {
  auto b = make_builder("prm-ok", 23, 26);
  b.implement_runtime_permission_protocol();
  b.permission_use(cat::camera_open());
  auto built = b.build();
  EXPECT_FALSE(run_at(built.apk, 26, /*user_grants=*/true).crashed());
  // A denying user still produces the crash — which is why the paper
  // treats the protocol plus result handling as the fix, not a guarantee.
  EXPECT_TRUE(run_at(built.apk, 26, /*user_grants=*/false).crashed());
}

TEST(Dynamic, RevocationCrashesLegacyTargets) {
  auto b = make_builder("prm-rev", 16, 22);
  b.permission_use(cat::resolver_insert());
  auto built = b.build();
  EXPECT_FALSE(run_at(built.apk, 21).crashed());
  // Device >= 23, user revokes: the AdAway crash.
  EXPECT_TRUE(run_at(built.apk, 26, false, /*user_revokes=*/true).crashed());
  // A user who never revokes keeps the install-time grant.
  EXPECT_FALSE(
      run_at(built.apk, 26, false, /*user_revokes=*/false).crashed());
}

TEST(Dynamic, TransitivePermissionEnforcedInsideFramework) {
  auto b = make_builder("prm-deep", 19, 26);
  b.permission_use(cat::insert_image());  // enforces via ContentResolver
  auto built = b.build();
  const ExecutionResult at26 = run_at(built.apk, 26);
  ASSERT_TRUE(at26.crashed());
  EXPECT_EQ(at26.crashes[0].permission,
            "android.permission.WRITE_EXTERNAL_STORAGE");
}

// --- skipped callbacks ---------------------------------------------------------------

TEST(Dynamic, MissingCallbackIsSkippedNotCrashed) {
  auto b = make_builder("apc", 14, 27);
  b.callback_override(cat::on_attach_context());  // introduced at 23
  auto built = b.build();
  const ExecutionResult at20 = run_at(built.apk, 20);
  EXPECT_FALSE(at20.crashed());
  ASSERT_EQ(at20.skipped_callbacks.size(), 1u);
  EXPECT_EQ(at20.skipped_callbacks[0].framework_callback.name, "onAttach");
  EXPECT_TRUE(run_at(built.apk, 23).skipped_callbacks.empty());
}

// --- the differential property ----------------------------------------------------------
//
// Over the whole benchmark suite: every NoSuchMethod crash at a supported
// level must correspond to a *real* seeded API issue, and every real,
// statically-visible, unguarded API issue must actually crash at some
// level in its problem range. This ties the static ground truth, the
// detector and the executor together.

TEST(Dynamic, DifferentialAgainstGroundTruth) {
  const auto apps = accuracy_bench(repo());
  int confirmed = 0;
  for (const auto& app : apps) {
    // Real API issues the dynamic run should be able to confirm: emitted
    // code (not hidden_*), any placement that executes.
    std::unordered_set<std::string> expected;   // "location|api"
    std::unordered_set<std::string> forbidden;  // everything else seeded
    for (const auto& issue : app.truth.issues) {
      if (issue.kind != MismatchKind::kApiInvocation) continue;
      // The dynamic crash carries the *declared* reference (as a real
      // NoSuchMethodError does) while the ledger records the declaring
      // class; name+descriptor is the common identity.
      const std::string key = issue.location.to_string() + "|" +
                              issue.subject.name + ":" +
                              issue.subject.descriptor;
      if (issue.real && issue.tag != "hidden_site")
        expected.insert(key);
      else
        forbidden.insert(key);
    }

    Interpreter interp{app.apk, repo()};
    std::unordered_set<std::string> crashed;
    const ApiInterval range =
        app.apk.manifest.supported_range().intersect(ApiInterval::full());
    for (int level = range.lo(); level <= range.hi(); ++level) {
      DeviceConfig device;
      device.level = level;
      const ExecutionResult result = interp.run(device);
      EXPECT_FALSE(result.step_limit_hit) << app.apk.name;
      for (const auto& crash : result.crashes) {
        if (crash.kind != CrashEvent::Kind::kNoSuchMethod) continue;
        const std::string key = crash.location.to_string() + "|" +
                                crash.missing_api.name + ":" +
                                crash.missing_api.descriptor;
        EXPECT_FALSE(forbidden.contains(key))
            << app.apk.name << " level " << level << ": benign construct "
            << "crashed: " << crash.to_string();
        crashed.insert(key);
      }
    }
    for (const auto& key : expected) {
      EXPECT_TRUE(crashed.contains(key))
          << app.apk.name << ": real issue never crashed: " << key;
      confirmed += crashed.contains(key);
    }
  }
  EXPECT_GT(confirmed, 50);  // the suite seeds dozens of real API issues
}

}  // namespace
}  // namespace saintdroid
