// Tests for the dominator analysis and the DOT export, including a
// brute-force property check of dominance over generated CFGs.
#include <gtest/gtest.h>

#include <deque>
#include <functional>

#include "analysis/dominators.hpp"
#include "analysis/dot.hpp"
#include "dex/builder.hpp"
#include "support/rng.hpp"

namespace saintdroid {
namespace {

struct Fixture {
  DexFile dex;
  const MethodCode* code;
};

Fixture build_method(const std::function<void(MethodBuilder&)>& author) {
  DexBuilder b;
  auto& cls = b.add_class("t/T");
  auto& m = cls.add_method("f");
  m.registers(8);
  author(m);
  Fixture fx{b.build(), nullptr};
  fx.code = &*fx.dex.classes()[0].methods[0].code;
  return fx;
}

/// Brute-force dominance: a dominates b iff removing a disconnects b from
/// the entry.
bool dominates_brute(const Cfg& cfg, std::uint32_t a, std::uint32_t b) {
  if (a == b) return true;
  if (a == Cfg::entry()) return true;  // the entry dominates everything
  std::vector<bool> seen(cfg.block_count(), false);
  std::deque<std::uint32_t> queue{Cfg::entry()};
  seen[Cfg::entry()] = true;
  while (!queue.empty()) {
    const auto block = queue.front();
    queue.pop_front();
    if (block == b) return false;  // reached b while avoiding a
    for (const std::uint32_t next :
         {cfg.block(block).fallthrough, cfg.block(block).taken}) {
      if (next == kNoBlock || next == a || seen[next]) continue;
      seen[next] = true;
      queue.push_back(next);
    }
  }
  return true;  // b unreachable without a
}

bool reachable(const Cfg& cfg, std::uint32_t target) {
  std::vector<bool> seen(cfg.block_count(), false);
  std::deque<std::uint32_t> queue{Cfg::entry()};
  seen[Cfg::entry()] = true;
  while (!queue.empty()) {
    const auto block = queue.front();
    queue.pop_front();
    if (block == target) return true;
    for (const std::uint32_t next :
         {cfg.block(block).fallthrough, cfg.block(block).taken}) {
      if (next == kNoBlock || seen[next]) continue;
      seen[next] = true;
      queue.push_back(next);
    }
  }
  return false;
}

TEST(Dominators, StraightLine) {
  const Fixture fx = build_method([](MethodBuilder& m) {
    m.const_int(0, 1);
    m.return_void();
  });
  const Cfg cfg = Cfg::build(*fx.code);
  const Dominators dom = Dominators::compute(cfg);
  EXPECT_EQ(dom.idom(Cfg::entry()), kNoBlock);
  EXPECT_TRUE(dom.dominates(0, 0));
}

TEST(Dominators, DiamondJoinDominatedByFork) {
  const Fixture fx = build_method([](MethodBuilder& m) {
    Label other = m.new_label();
    Label join = m.new_label();
    m.const_int(0, 5);
    m.if_lit(CmpOp::kLt, 0, 3, other);  // block A (fork)
    m.const_int(1, 1);                  // block B
    m.goto_(join);
    m.bind(other);
    m.const_int(1, 2);                  // block C
    m.bind(join);
    m.return_void();                    // block D (join)
  });
  const Cfg cfg = Cfg::build(*fx.code);
  const Dominators dom = Dominators::compute(cfg);
  const std::uint32_t fork = cfg.block_of(0);
  const std::uint32_t join = cfg.block_of(
      static_cast<std::uint32_t>(fx.code->insns.size() - 1));
  EXPECT_EQ(dom.idom(join), fork);  // neither branch arm dominates the join
  EXPECT_TRUE(dom.dominates(fork, join));
  EXPECT_FALSE(dom.dominates(cfg.block_of(2), join));
}

class DominatorProperty : public ::testing::TestWithParam<int> {};

TEST_P(DominatorProperty, AgreesWithBruteForce) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 77 + 5};
  const Fixture fx = build_method([&rng](MethodBuilder& m) {
    const int chunks = static_cast<int>(rng.uniform(2, 8));
    std::vector<Label> joins;
    for (int c = 0; c < chunks; ++c) {
      Label skip = m.new_label();
      m.const_int(0, c);
      m.if_lit(CmpOp::kGe, 0, static_cast<int>(rng.uniform(2, 29)), skip);
      m.const_int(1, c);
      if (rng.chance(0.3)) {
        Label early = m.new_label();
        m.goto_(early);
        m.bind(early);
      }
      m.bind(skip);
    }
    m.return_void();
  });
  const Cfg cfg = Cfg::build(*fx.code);
  const Dominators dom = Dominators::compute(cfg);
  for (std::uint32_t a = 0; a < cfg.block_count(); ++a) {
    for (std::uint32_t b = 0; b < cfg.block_count(); ++b) {
      if (!reachable(cfg, b)) continue;  // dominance defined on reachable
      EXPECT_EQ(dom.dominates(a, b), dominates_brute(cfg, a, b))
          << "a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominatorProperty, ::testing::Range(1, 16));

// --- dot export -----------------------------------------------------------------

TEST(Dot, WellFormedDigraph) {
  const Fixture fx = build_method([](MethodBuilder& m) {
    Label skip = m.new_label();
    m.sget_sdk_int(0);
    m.if_lit(CmpOp::kLt, 0, 23, skip);
    m.invoke_virtual("android/content/Context", "getColorStateList",
                     "android/content/res/ColorStateList", {"I"});
    m.bind(skip);
    m.return_void();
  });
  const Cfg cfg = Cfg::build(*fx.code);
  const GuardResult guards =
      analyze_guards(fx.dex, *fx.code, cfg, ApiInterval{14, 29});
  const std::string dot =
      cfg_to_dot(fx.dex, *fx.code, cfg, "t/T.f", &guards);
  EXPECT_EQ(dot.rfind("digraph", 0), 0u);
  EXPECT_EQ(dot.back(), '\n');
  EXPECT_NE(dot.find("b0 ->"), std::string::npos);
  EXPECT_NE(dot.find("[23,29]"), std::string::npos);  // refined interval
  EXPECT_NE(dot.find("getColorStateList"), std::string::npos);
  // Balanced braces.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(Dot, NoGuardAnnotationWithoutGuards) {
  const Fixture fx = build_method([](MethodBuilder& m) {
    m.const_int(0, 1);
    m.return_void();
  });
  const Cfg cfg = Cfg::build(*fx.code);
  const std::string dot = cfg_to_dot(fx.dex, *fx.code, cfg, "g");
  EXPECT_EQ(dot.find("[2,29]"), std::string::npos);
}

}  // namespace
}  // namespace saintdroid
