// Unit tests for the SDEX container: builder, (de)serialization, validation
// of corrupted inputs, descriptors, manifest/APK round trips and the
// disassembler.
#include <gtest/gtest.h>

#include "dex/apk.hpp"
#include "dex/builder.hpp"
#include "dex/disasm.hpp"
#include "support/bytes.hpp"

namespace saintdroid {
namespace {

DexFile tiny_dex() {
  DexBuilder b;
  auto& cls = b.add_class("com/example/Main", "android/app/Activity");
  auto& m = cls.add_method("onCreate", "V", {"android/os/Bundle"});
  m.registers(4);
  m.sget_sdk_int(0);
  Label skip = m.new_label();
  m.if_lit(CmpOp::kLt, 0, 23, skip);
  m.invoke_virtual("android/content/Context", "getColorStateList",
                   "android/content/res/ColorStateList", {"I"});
  m.move_result(1);
  m.bind(skip);
  m.return_void();
  return b.build();
}

// --- builder -----------------------------------------------------------------

TEST(Builder, PoolsAreInterned) {
  DexBuilder b;
  auto& cls = b.add_class("com/a/A");
  auto& m1 = cls.add_method("f");
  m1.invoke_virtual("android/view/View", "performClick", "Z");
  m1.invoke_virtual("android/view/View", "performClick", "Z");
  m1.return_void();
  const DexFile dex = b.build();
  // One method ref despite two call sites; one type entry for View.
  EXPECT_EQ(dex.method_ref_count(), 1u);
  int view_types = 0;
  for (std::size_t i = 0; i < dex.type_count(); ++i)
    view_types += dex.type_name(static_cast<std::uint32_t>(i)) ==
                  "android/view/View";
  EXPECT_EQ(view_types, 1);
}

TEST(Builder, ForwardAndBackwardLabels) {
  DexBuilder b;
  auto& cls = b.add_class("com/a/Loop");
  auto& m = cls.add_method("f");
  Label top = m.new_label();
  m.bind(top);               // @0
  m.const_int(0, 1);         // @0 actually: bind attaches to next insn
  Label out = m.new_label();
  m.if_lit(CmpOp::kEq, 0, 0, out);
  m.goto_(top);
  m.bind(out);
  m.return_void();
  const DexFile dex = b.build();
  const auto& code = *dex.classes()[0].methods[0].code;
  EXPECT_EQ(code.insns[1].op, Opcode::kIfCmp);
  EXPECT_EQ(code.insns[1].target, 3u);  // the return
  EXPECT_EQ(code.insns[2].op, Opcode::kGoto);
  EXPECT_EQ(code.insns[2].target, 0u);  // the loop head
}

TEST(Builder, AbstractMethodsHaveNoCode) {
  DexBuilder b;
  auto& iface = b.add_class("com/a/I", "", {}, kAccPublic | kAccInterface);
  iface.add_abstract_method("onThing");
  const DexFile dex = b.build();
  EXPECT_FALSE(dex.classes()[0].methods[0].code.has_value());
}

// --- round trip --------------------------------------------------------------

TEST(DexFile, SerializeParseRoundTrip) {
  const DexFile dex = tiny_dex();
  const auto bytes = dex.serialize();
  const DexFile back = DexFile::parse(bytes);
  // Identical re-serialization implies structural equality.
  EXPECT_EQ(back.serialize(), bytes);
  EXPECT_EQ(back.instruction_count(), dex.instruction_count());
  EXPECT_EQ(back.classes().size(), dex.classes().size());
}

TEST(DexFile, DescriptorConstruction) {
  DexBuilder b;
  auto& cls = b.add_class("com/a/A");
  auto& m = cls.add_method("f", "android/view/View",
                           {"I", "[Ljava/lang/String;", "java/lang/String"});
  m.return_void();
  const DexFile dex = b.build();
  const auto& def = dex.classes()[0].methods[0];
  EXPECT_EQ(dex.descriptor_of(def.proto),
            "(I[Ljava/lang/String;Ljava/lang/String;)Landroid/view/View;");
}

TEST(DexFile, MethodAndFieldIdentity) {
  const DexFile dex = tiny_dex();
  bool found = false;
  for (const auto& cls : dex.classes()) {
    for (const auto& m : cls.methods) {
      const MethodId id = dex.method_id(cls, m);
      if (id.name == "onCreate") {
        EXPECT_EQ(id.class_name, "com/example/Main");
        EXPECT_EQ(id.descriptor, "(Landroid/os/Bundle;)V");
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
  // The sget's field ref resolves to the SDK_INT identity.
  const auto& code = *dex.classes()[0].methods[0].code;
  ASSERT_EQ(code.insns[0].op, Opcode::kSget);
  EXPECT_EQ(dex.field_id_at(code.insns[0].index), kSdkIntField);
}

TEST(DexFile, FindClass) {
  const DexFile dex = tiny_dex();
  EXPECT_NE(dex.find_class("com/example/Main"), nullptr);
  EXPECT_EQ(dex.find_class("com/example/Other"), nullptr);
}

TEST(DexFile, InstanceFieldInstructionsRoundTrip) {
  DexBuilder b;
  auto& cls = b.add_class("com/a/F");
  auto& m = cls.add_method("f");
  m.sget_sdk_int(0);
  m.iput(0, 5, "com/a/F", "cachedSdk", "I");
  m.iget(1, 5, "com/a/F", "cachedSdk", "I");
  m.return_void();
  const DexFile dex = b.build();
  const DexFile back = DexFile::parse(dex.serialize());
  const auto& code = *back.classes()[0].methods[0].code;
  ASSERT_EQ(code.insns[1].op, Opcode::kIput);
  EXPECT_EQ(code.insns[1].reg_a, 0);
  EXPECT_EQ(code.insns[1].reg_b, 5);
  ASSERT_EQ(code.insns[2].op, Opcode::kIget);
  EXPECT_EQ(back.field_id_at(code.insns[2].index).name, "cachedSdk");
  // Disassembly renders both registers and the field.
  const std::string text = disassemble(back);
  EXPECT_NE(text.find("iput v0, v5, com/a/F.cachedSdk:I"),
            std::string::npos);
  EXPECT_NE(text.find("iget v1, v5, com/a/F.cachedSdk:I"),
            std::string::npos);
}

// --- corrupted input ---------------------------------------------------------

TEST(DexParse, BadMagic) {
  auto bytes = tiny_dex().serialize();
  bytes[0] ^= 0xff;
  EXPECT_THROW(DexFile::parse(bytes), ParseError);
}

TEST(DexParse, Truncated) {
  const auto bytes = tiny_dex().serialize();
  for (const std::size_t cut : {std::size_t{5}, bytes.size() / 2,
                                bytes.size() - 1}) {
    std::span<const std::uint8_t> window(bytes.data(), cut);
    EXPECT_THROW(DexFile::parse(window), ParseError) << "cut=" << cut;
  }
}

TEST(DexParse, TrailingGarbage) {
  auto bytes = tiny_dex().serialize();
  bytes.push_back(0x00);
  EXPECT_THROW(DexFile::parse(bytes), ParseError);
}

TEST(DexParse, BranchTargetOutOfRangeRejected) {
  // Hand-craft a minimal container with a goto past the end.
  ByteWriter w;
  w.u32(0x58454453);  // magic
  w.u32(1);           // version
  w.uleb(1);          // strings
  w.str("com/bad/C");
  w.uleb(1);  // types
  w.uleb(0);
  w.uleb(1);  // protos: ()<type0>
  w.uleb(0);
  w.uleb(0);
  w.uleb(0);  // method refs
  w.uleb(0);  // field refs
  w.uleb(1);  // classes
  w.uleb(0);  // type idx
  w.uleb(0);  // no super
  w.uleb(0);  // no interfaces
  w.uleb(1);  // flags
  w.uleb(1);  // one method
  w.uleb(0);  // name idx
  w.uleb(0);  // proto idx
  w.uleb(1);  // flags
  w.u8(1);    // has code
  w.uleb(2);  // registers
  w.uleb(1);  // one instruction
  w.u8(7);    // kGoto
  w.uleb(99); // target far out of range
  EXPECT_THROW(DexFile::parse(w.data()), ParseError);
}

TEST(DexParse, PoolIndexOutOfRangeRejected) {
  ByteWriter w;
  w.u32(0x58454453);
  w.u32(1);
  w.uleb(1);
  w.str("x");
  w.uleb(1);  // one type referencing string 5 (out of range)
  w.uleb(5);
  w.uleb(0);
  w.uleb(0);
  w.uleb(0);
  w.uleb(0);
  EXPECT_THROW(DexFile::parse(w.data()), ParseError);
}

// --- instruction helpers -------------------------------------------------------

class CmpEval : public ::testing::TestWithParam<CmpOp> {};

TEST_P(CmpEval, AgreesWithBuiltins) {
  const CmpOp op = GetParam();
  for (const std::int64_t a : {-2, 0, 3, 23}) {
    for (const std::int64_t b : {-2, 0, 3, 23}) {
      bool expected = false;
      switch (op) {
        case CmpOp::kEq: expected = a == b; break;
        case CmpOp::kNe: expected = a != b; break;
        case CmpOp::kLt: expected = a < b; break;
        case CmpOp::kLe: expected = a <= b; break;
        case CmpOp::kGt: expected = a > b; break;
        case CmpOp::kGe: expected = a >= b; break;
      }
      EXPECT_EQ(eval_cmp(op, a, b), expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, CmpEval,
                         ::testing::Values(CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                                           CmpOp::kLe, CmpOp::kGt, CmpOp::kGe));

// --- manifest / apk ------------------------------------------------------------

TEST(Manifest, RoundTrip) {
  Manifest m;
  m.package = "com.example.app";
  m.min_sdk = 16;
  m.target_sdk = 26;
  m.max_sdk = 28;
  m.permissions = {"android.permission.CAMERA"};
  m.components = {Component{ComponentKind::kActivity, "com/example/Main"},
                  Component{ComponentKind::kService, "com/example/Svc"}};
  m.buildable = false;
  ByteWriter w;
  m.serialize(w);
  ByteReader r{w.data()};
  EXPECT_EQ(Manifest::parse(r), m);
}

TEST(Manifest, SupportedRange) {
  Manifest m;
  m.min_sdk = 14;
  m.max_sdk = 0;  // unset
  EXPECT_EQ(m.supported_range(), ApiInterval(14, kMaxApiLevel));
  m.max_sdk = 25;
  EXPECT_EQ(m.supported_range(), ApiInterval(14, 25));
}

TEST(Manifest, InvalidSdkRangeRejected) {
  Manifest m;
  m.package = "p";
  m.min_sdk = 20;
  m.max_sdk = 10;
  ByteWriter w;
  m.serialize(w);
  ByteReader r{w.data()};
  EXPECT_THROW(Manifest::parse(r), ParseError);
}

TEST(Apk, MultiDexRoundTrip) {
  Apk apk;
  apk.name = "demo";
  apk.manifest.package = "com.demo";
  apk.manifest.min_sdk = 15;
  apk.dexes.push_back(tiny_dex());
  apk.dexes.push_back(tiny_dex());
  const auto bytes = apk.serialize();
  const Apk back = Apk::parse(bytes);
  EXPECT_EQ(back.name, "demo");
  ASSERT_EQ(back.dexes.size(), 2u);
  EXPECT_EQ(back.dex_loc(), apk.dex_loc());
  EXPECT_NE(back.find_class("com/example/Main").class_def, nullptr);
  EXPECT_EQ(back.find_class("no/such/Class").class_def, nullptr);
}

TEST(Apk, EmptyDexListRejected) {
  Apk apk;
  apk.name = "empty";
  apk.manifest.package = "e";
  apk.dexes.push_back(tiny_dex());
  auto bytes = apk.serialize();
  // Surgically zero the dex count: it sits right after name+manifest; easier
  // to rebuild the container by hand.
  ByteWriter w;
  w.u32(0x4b504153);
  w.str("empty");
  apk.manifest.serialize(w);
  w.uleb(0);
  EXPECT_THROW(Apk::parse(w.data()), ParseError);
}

// --- disassembler ---------------------------------------------------------------

TEST(Disasm, RendersPoolReferences) {
  const DexFile dex = tiny_dex();
  const std::string text = disassemble(dex);
  EXPECT_NE(text.find("class com/example/Main extends android/app/Activity"),
            std::string::npos);
  EXPECT_NE(text.find("sget v0, android/os/Build$VERSION.SDK_INT:I"),
            std::string::npos);
  EXPECT_NE(text.find("if-cmp-lt v0, #23"), std::string::npos);
  EXPECT_NE(text.find("invoke-virtual android/content/Context."
                      "getColorStateList"),
            std::string::npos);
}

TEST(Footprint, GrowsWithContent) {
  DexBuilder small;
  auto& c1 = small.add_class("a/A");
  c1.add_method("f").return_void();
  DexBuilder large;
  auto& c2 = large.add_class("a/A");
  for (int i = 0; i < 20; ++i) {
    auto& m = c2.add_method("f" + std::to_string(i));
    for (int j = 0; j < 30; ++j) m.const_int(0, j);
    m.return_void();
  }
  EXPECT_LT(small.build().footprint_bytes(), large.build().footprint_bytes());
}

}  // namespace
}  // namespace saintdroid
