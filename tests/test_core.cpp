// Tests for the AUM usage modeler, the AMD detectors (Algorithms 2-4) and
// the SaintDroid facade, over hand-seeded apps with known ledgers.
#include <gtest/gtest.h>

#include <unordered_set>

#include "adf/repository.hpp"
#include "core/saintdroid.hpp"
#include "workload/app_builder.hpp"

namespace saintdroid {
namespace {

namespace cat = catalog;

const FrameworkRepository& repo() { return FrameworkRepository::standard(); }

SaintDroid& tool() {
  static SaintDroid instance{repo()};
  return instance;
}

std::unordered_set<std::string> keys_of(const AnalysisResult& result) {
  std::unordered_set<std::string> keys;
  for (const auto& m : result.mismatches) keys.insert(match_key(m));
  return keys;
}

AppBuilder make_builder(const char* name, int min_sdk, int target_sdk) {
  AppBuilder b{name, std::string{"com.test."} + name, repo().spec()};
  b.sdk(min_sdk, target_sdk);
  return b;
}

// --- Algorithm 2: invocation mismatches ------------------------------------------

TEST(Amd, BackwardInvocationLevels) {
  auto b = make_builder("backward", 14, 27);
  b.api_call(cat::get_color_state_list());
  auto built = b.build();
  const auto result = tool().analyze(built.apk);
  ASSERT_EQ(result.count(MismatchKind::kApiInvocation), 1u);
  const Mismatch& m = result.mismatches[0];
  EXPECT_EQ(m.problem_levels, ApiInterval(14, 22));
  EXPECT_NE(m.note.find("introduced at API level 23"), std::string::npos);
}

TEST(Amd, ForwardInvocationLevels) {
  auto b = make_builder("forward", 14, 22);
  b.api_call(cat::http_client_execute());  // removed at 23; max unset -> 29
  auto built = b.build();
  const auto result = tool().analyze(built.apk);
  ASSERT_GE(result.count(MismatchKind::kApiInvocation), 1u);
  bool forward_found = false;
  for (const auto& m : result.mismatches)
    if (m.kind == MismatchKind::kApiInvocation &&
        m.problem_levels == ApiInterval(23, 29))
      forward_found = true;
  EXPECT_TRUE(forward_found);
}

TEST(Amd, MaxSdkLimitsForwardExposure) {
  auto b = make_builder("capped", 14, 22);
  b.sdk(14, 22, 22);  // maxSdk 22: the removed API is never exposed
  b.api_call(cat::http_client_execute());
  auto built = b.build();
  const auto result = tool().analyze(built.apk);
  EXPECT_EQ(result.count(MismatchKind::kApiInvocation), 0u);
}

TEST(Amd, GuardedCallIsSilent) {
  auto b = make_builder("guarded", 14, 27);
  b.api_call(cat::get_color_state_list(), GuardMode::kLocal);
  b.api_call(cat::get_color_state_list(), GuardMode::kLocalViaRegister);
  b.api_call(cat::get_color_state_list(), GuardMode::kCrossMethod);
  auto built = b.build();
  EXPECT_TRUE(tool().analyze(built.apk).mismatches.empty());
}

TEST(Amd, FieldCachedGuardIsSilent) {
  auto b = make_builder("fieldguard", 14, 27);
  b.api_call(cat::get_color_state_list(), GuardMode::kLocalViaField);
  auto built = b.build();
  EXPECT_TRUE(tool().analyze(built.apk).mismatches.empty());
  EXPECT_EQ(built.truth.issues[0].tag, "guarded_field");
}

TEST(Amd, HiddenGuardStillFlagged) {
  // The check lives in runtime-generated code; static analysis must
  // conservatively report (the paper's FP mechanism, §VI).
  auto b = make_builder("hidden", 14, 27);
  b.api_call(cat::get_color_state_list(), GuardMode::kHidden);
  auto built = b.build();
  EXPECT_EQ(tool().analyze(built.apk).count(MismatchKind::kApiInvocation),
            1u);
  EXPECT_EQ(built.truth.real_count(), 0u);  // ...and the ledger knows better
}

TEST(Aum, InheritedReceiverResolved) {
  auto b = make_builder("inherited", 14, 27);
  b.inherited_api_call(cat::get_color_state_list("android/view/View"));
  auto built = b.build();
  const auto result = tool().analyze(built.apk);
  ASSERT_EQ(result.count(MismatchKind::kApiInvocation), 1u);
  EXPECT_EQ(result.mismatches[0].subject.class_name,
            "android/content/Context");
}

TEST(Aum, SecondaryDexExplored) {
  auto b = make_builder("latebound", 14, 27);
  b.api_call(cat::get_color_state_list(), GuardMode::kNone,
             Placement::kSecondaryDex);
  auto built = b.build();
  ASSERT_EQ(built.apk.dexes.size(), 2u);
  EXPECT_EQ(tool().analyze(built.apk).count(MismatchKind::kApiInvocation),
            1u);
}

TEST(Aum, ReflectionTargetExplored) {
  // Class.forName("com.test....Dyn0") with a constant name: the paper's
  // conservative late-binding rule pulls the class into the analysis.
  auto b = make_builder("reflect", 14, 27);
  b.api_call(cat::get_color_state_list(), GuardMode::kNone,
             Placement::kReflection);
  auto built = b.build();
  EXPECT_EQ(tool().analyze(built.apk).count(MismatchKind::kApiInvocation),
            1u);
  ASSERT_EQ(built.truth.issues.size(), 1u);
  EXPECT_EQ(built.truth.issues[0].tag, "reflection");
}

TEST(Aum, ReflectionRespectsLateBindingSwitch) {
  auto b = make_builder("reflect2", 14, 27);
  b.api_call(cat::get_color_state_list(), GuardMode::kNone,
             Placement::kReflection);
  auto built = b.build();
  SaintDroidOptions options;
  options.aum.follow_late_binding = false;
  SaintDroid limited{repo(), options};
  EXPECT_EQ(limited.analyze(built.apk).count(MismatchKind::kApiInvocation),
            0u);
}

TEST(Aum, LateBindingCanBeDisabled) {
  auto b = make_builder("latebound2", 14, 27);
  b.api_call(cat::get_color_state_list(), GuardMode::kNone,
             Placement::kSecondaryDex);
  auto built = b.build();
  SaintDroidOptions options;
  options.aum.follow_late_binding = false;
  SaintDroid limited{repo(), options};
  EXPECT_EQ(limited.analyze(built.apk).count(MismatchKind::kApiInvocation),
            0u);
}

TEST(Aum, DeadCodeNotReached) {
  auto b = make_builder("dead", 14, 27);
  b.api_call(cat::get_color_state_list(), GuardMode::kNone,
             Placement::kDeadCode);
  auto built = b.build();
  EXPECT_TRUE(tool().analyze(built.apk).mismatches.empty());
}

TEST(Aum, InterproceduralContextCanBeDisabled) {
  auto b = make_builder("ctx", 14, 27);
  b.api_call(cat::get_color_state_list(), GuardMode::kCrossMethod);
  auto built = b.build();
  SaintDroidOptions options;
  options.aum.interprocedural_guards = false;
  SaintDroid intraprocedural{repo(), options};
  // Without context propagation the callee is analyzed under the full
  // range and the guarded call is (wrongly) flagged — CID's behaviour.
  EXPECT_EQ(
      intraprocedural.analyze(built.apk).count(MismatchKind::kApiInvocation),
      1u);
}

// --- Algorithm 3: callback mismatches ---------------------------------------------

TEST(Amd, CallbackBackward) {
  auto b = make_builder("apc", 14, 27);
  b.callback_override(cat::on_attach_context());
  auto built = b.build();
  const auto result = tool().analyze(built.apk);
  ASSERT_EQ(result.count(MismatchKind::kApiCallback), 1u);
  EXPECT_EQ(result.mismatches[0].problem_levels, ApiInterval(14, 22));
}

TEST(Amd, CallbackAliveEverywhereIsSilent) {
  auto b = make_builder("apc-safe", 14, 27);
  b.callback_override(cat::on_create_view());  // Fragment@11 < 14
  auto built = b.build();
  EXPECT_EQ(tool().analyze(built.apk).count(MismatchKind::kApiCallback), 0u);
}

TEST(Amd, CallbackAboveTargetStillDetected) {
  // onTopResumedActivityChanged@29 does not exist in the target-26 image;
  // Algorithm 3 consults the database across all levels.
  auto b = make_builder("apc-above", 14, 26);
  b.callback_override(cat::on_top_resumed_activity_changed());
  auto built = b.build();
  const auto result = tool().analyze(built.apk);
  ASSERT_EQ(result.count(MismatchKind::kApiCallback), 1u);
  EXPECT_EQ(result.mismatches[0].problem_levels, ApiInterval(14, 28));
}

TEST(Amd, PlainMethodOverrideIsNotCallbackMismatch) {
  // Overriding a non-callback framework method introduced later is not an
  // APC issue (the framework never invokes it).
  DexBuilder b;
  auto& cls = b.add_class("com/test/W", "android/view/View");
  cls.add_method("getForeground", "android/graphics/drawable/Drawable")
      .const_int(0, 0)
      .return_reg(0);
  Apk apk;
  apk.name = "plain-override";
  apk.manifest.package = "t";
  apk.manifest.min_sdk = 14;
  apk.manifest.target_sdk = 27;
  apk.dexes.push_back(b.build());
  EXPECT_EQ(tool().analyze(apk).count(MismatchKind::kApiCallback), 0u);
}

// --- Algorithm 4: permission mismatches -------------------------------------------

TEST(Amd, RequestMismatchWhenProtocolMissing) {
  auto b = make_builder("prm-request", 19, 26);
  b.permission_use(cat::camera_open());
  auto built = b.build();
  const auto result = tool().analyze(built.apk);
  ASSERT_EQ(result.count(MismatchKind::kPermissionRequest), 1u);
  const Mismatch& m = result.mismatches.back();
  EXPECT_EQ(m.permission, "android.permission.CAMERA");
  EXPECT_EQ(m.problem_levels, ApiInterval(23, 29));
}

TEST(Amd, ProtocolSuppressesRequestMismatch) {
  auto b = make_builder("prm-ok", 23, 26);
  b.implement_runtime_permission_protocol();
  b.permission_use(cat::camera_open());
  auto built = b.build();
  EXPECT_EQ(tool().analyze(built.apk).permission_count(), 0u);
}

TEST(Amd, RevocationMismatchForLegacyTargets) {
  auto b = make_builder("prm-revoke", 16, 22);
  b.permission_use(cat::resolver_insert());
  auto built = b.build();
  const auto result = tool().analyze(built.apk);
  ASSERT_EQ(result.count(MismatchKind::kPermissionRevocation), 1u);
  EXPECT_EQ(result.mismatches.back().permission,
            "android.permission.WRITE_EXTERNAL_STORAGE");
}

TEST(Amd, ProtocolDoesNotHelpLegacyTargets) {
  // Algorithm 4: targeting < 23 is itself the problem on >= 23 devices.
  auto b = make_builder("prm-legacy", 16, 22);
  b.implement_runtime_permission_protocol();
  b.permission_use(cat::camera_open());
  auto built = b.build();
  EXPECT_EQ(tool().analyze(built.apk).count(
                MismatchKind::kPermissionRevocation),
            1u);
}

TEST(Amd, Pre23OnlyUseIsSafe) {
  auto b = make_builder("prm-pre23", 16, 26);
  b.permission_use(cat::camera_open(), GuardMode::kLocal);  // use only < 23
  auto built = b.build();
  EXPECT_EQ(tool().analyze(built.apk).permission_count(), 0u);
}

TEST(Amd, MaxSdkBelow23IsSafe) {
  auto b = make_builder("prm-old", 16, 21);
  b.sdk(16, 21, 22);
  b.permission_use(cat::camera_open());
  auto built = b.build();
  EXPECT_EQ(tool().analyze(built.apk).permission_count(), 0u);
}

TEST(Amd, TransitivePermissionDetected) {
  auto b = make_builder("prm-deep", 19, 26);
  b.permission_use(cat::insert_image());  // transitive WRITE_EXTERNAL
  auto built = b.build();
  const auto result = tool().analyze(built.apk);
  ASSERT_EQ(result.count(MismatchKind::kPermissionRequest), 1u);
  EXPECT_EQ(result.mismatches.back().permission,
            "android.permission.WRITE_EXTERNAL_STORAGE");
}

TEST(Amd, OnePermissionReportedOnce) {
  auto b = make_builder("prm-dedupe", 19, 26);
  b.permission_use(cat::camera_open());
  // A second API guarded by the same permission.
  DexBuilder unused;  // (distinct seeds suffice: reuse another CAMERA API)
  auto built = b.build();
  const auto result = tool().analyze(built.apk);
  EXPECT_EQ(result.count(MismatchKind::kPermissionRequest), 1u);
}

// --- facade ------------------------------------------------------------------------

TEST(Facade, ReportsResourceUsage) {
  auto b = make_builder("usage", 14, 27);
  b.api_call(cat::get_color_state_list());
  b.pad_to(5000);
  auto built = b.build();
  const auto result = tool().analyze(built.apk);
  EXPECT_TRUE(result.completed);
  EXPECT_GT(result.usage.seconds, 0.0);
  EXPECT_GT(result.usage.peak_bytes, 0u);
  EXPECT_GT(result.usage.loaded_classes, 0u);
}

TEST(Facade, EagerConfigurationLoadsMore) {
  auto b = make_builder("eager", 14, 27);
  b.api_call(cat::get_color_state_list());
  auto built = b.build();
  SaintDroidOptions eager_options;
  eager_options.lazy_loading = false;
  SaintDroid eager{repo(), eager_options};
  const auto lazy_result = tool().analyze(built.apk);
  const auto eager_result = eager.analyze(built.apk);
  EXPECT_GT(eager_result.usage.loaded_classes,
            4 * lazy_result.usage.loaded_classes);
  // Identical detections either way: loading strategy is a pure
  // performance trade (DESIGN.md decision 2).
  EXPECT_EQ(keys_of(eager_result), keys_of(lazy_result));
}

TEST(Facade, CapabilityMatrix) {
  EXPECT_TRUE(tool().detects(MismatchKind::kApiInvocation));
  EXPECT_TRUE(tool().detects(MismatchKind::kApiCallback));
  EXPECT_TRUE(tool().detects(MismatchKind::kPermissionRequest));
  EXPECT_TRUE(tool().detects(MismatchKind::kPermissionRevocation));
}

TEST(Report, TextRendering) {
  auto b = make_builder("text", 14, 27);
  b.api_call(cat::get_color_state_list());
  auto built = b.build();
  const auto result = tool().analyze(built.apk);
  const std::string text = result.to_text("text-app");
  EXPECT_NE(text.find("=== text-app ==="), std::string::npos);
  EXPECT_NE(text.find("[API]"), std::string::npos);
  EXPECT_NE(text.find("getColorStateList"), std::string::npos);
}

}  // namespace
}  // namespace saintdroid
