// The SEM / SDC detector extension (docs/DETECTORS.md):
//
//   * SEM — semantic-incompatibility findings from the curated
//     semantic-change table: unguarded call sites overlapping a change
//     window are real; inverse-guarded look-alikes (direct or via the
//     helper-method idiom) are benign and must stay silent.
//   * SDC — declared-SDK consistency lint: malformed declared ranges,
//     over-declared dangerous permissions, vacuous SDK_INT guards.
//   * Helper-predicate guards (AndroidCompass's second most common idiom)
//     are honored by the interval analysis for the classic API family too.
//
// The compatibility keystone sits at the bottom: on a legacy-config corpus
// (no SEM/SDC strata), enabling the new detectors changes *nothing* — every
// canonical journal row is byte-identical to a detectors-off run, at
// jobs ∈ {1, 2, 8}.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "adf/repository.hpp"
#include "baselines/cid.hpp"
#include "baselines/cider.hpp"
#include "baselines/lint.hpp"
#include "core/report.hpp"
#include "core/saintdroid.hpp"
#include "workload/app_builder.hpp"
#include "workload/catalog.hpp"
#include "workload/corpus.hpp"
#include "workload/harness.hpp"
#include "workload/journal.hpp"

namespace saintdroid {
namespace {

/// Small framework config shared by every repository in this file (the
/// curated surface — semantic-change classes included — is present at any
/// bulk size; bulk filler only adds mining cost).
FrameworkConfig small_config() {
  FrameworkConfig cfg;
  cfg.bulk_classes = 400;
  cfg.bulk_packages = 12;
  return cfg;
}

const FrameworkRepository& test_repo() {
  static const FrameworkRepository repo{small_config()};
  return repo;
}

SaintDroid& test_tool() {
  static SaintDroid tool{test_repo()};
  return tool;
}

/// The curated semantic-change API with the widest change window
/// (AsyncTask.execute, serial-executor change, [13, 29]).
ApiUse async_task_execute() {
  const auto apis = collect_semantic_apis(test_repo().spec());
  for (const auto& api : apis)
    if (api.declaring == "android/os/AsyncTask") return api;
  ADD_FAILURE() << "AsyncTask.execute missing from semantic catalog";
  return apis.at(0);
}

std::size_t count_of(const AnalysisResult& result, MismatchKind kind) {
  return result.count(kind);
}

// --- SEM -----------------------------------------------------------------------

TEST(SemanticDetector, UnguardedCallSiteInChangeWindowIsReported) {
  AppBuilder b{"sem-unguarded", "com.test.sem1", test_repo().spec()};
  b.sdk(16, 26);
  b.semantic_call(async_task_execute());
  const auto built = b.build();
  ASSERT_EQ(built.truth.real_count(MismatchKind::kSemanticChange), 1u);

  const AnalysisResult result = test_tool().analyze(built.apk);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(count_of(result, MismatchKind::kSemanticChange), 1u);
  const auto it = std::find_if(
      result.mismatches.begin(), result.mismatches.end(),
      [](const Mismatch& m) { return m.kind == MismatchKind::kSemanticChange; });
  ASSERT_NE(it, result.mismatches.end());
  EXPECT_EQ(it->subject.class_name, "android/os/AsyncTask");
  // The note carries the change taxonomy slug from the mined table.
  EXPECT_NE(it->note.find("threading-change"), std::string::npos) << it->note;
  // Exposure is the declared range clipped to the change window.
  EXPECT_FALSE(it->problem_levels.empty());
  EXPECT_GE(it->problem_levels.lo(), 16);

  const Score score = score_detections(built.truth, result.mismatches,
                                       MismatchKind::kSemanticChange);
  EXPECT_EQ(score.tp, 1u);
  EXPECT_EQ(score.fp, 0u);
  EXPECT_EQ(score.fn, 0u);
}

TEST(SemanticDetector, InverseGuardedCallSitesStaySilent) {
  // minSdk below the change window so the direct inverse guard
  // (`if (SDK_INT < from) call()`) is non-vacuous; the helper-method form
  // gets the same treatment via predicate evaluation.
  AppBuilder b{"sem-guarded", "com.test.sem2", test_repo().spec()};
  b.sdk(8, 26);
  b.semantic_call(async_task_execute(), GuardMode::kLocal);
  b.semantic_call(async_task_execute(), GuardMode::kHelperMethod);
  const auto built = b.build();
  EXPECT_EQ(built.truth.real_count(MismatchKind::kSemanticChange), 0u);
  EXPECT_EQ(built.truth.benign_count(), 2u);

  const AnalysisResult result = test_tool().analyze(built.apk);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(count_of(result, MismatchKind::kSemanticChange), 0u);
  // The helper predicate must not surface as a vacuous-guard lint either:
  // only direct SDK_INT comparisons feed that lint.
  EXPECT_EQ(count_of(result, MismatchKind::kSdkDeclaration), 0u);
}

TEST(SemanticDetector, DeclaredRangeOutsideChangeWindowIsBenign) {
  // An app capped below the window never executes the changed behavior.
  AppBuilder b{"sem-outside", "com.test.sem3", test_repo().spec()};
  b.sdk(8, 12, 12);  // [8, 12], AsyncTask window starts at 13
  b.semantic_call(async_task_execute());
  const auto built = b.build();
  EXPECT_EQ(built.truth.real_count(MismatchKind::kSemanticChange), 0u);

  const AnalysisResult result = test_tool().analyze(built.apk);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(count_of(result, MismatchKind::kSemanticChange), 0u);
}

// --- helper-method guards on the classic API family ----------------------------

TEST(HelperPredicateGuard, RecognizedForApiInvocations) {
  const ApiUse api = catalog::get_color_state_list();  // introduced at 23
  AppBuilder b{"helper-api", "com.test.helper", test_repo().spec()};
  b.sdk(16, 26);
  b.api_call(api, GuardMode::kNone);          // real: exposed on [16, 22]
  b.api_call(api, GuardMode::kHelperMethod);  // benign: predicate-guarded
  const auto built = b.build();
  ASSERT_EQ(built.truth.real_count(MismatchKind::kApiInvocation), 1u);

  const AnalysisResult result = test_tool().analyze(built.apk);
  ASSERT_TRUE(result.completed);
  const Score score = score_detections(built.truth, result.mismatches,
                                       MismatchKind::kApiInvocation);
  EXPECT_EQ(score.tp, 1u);
  EXPECT_EQ(score.fp, 0u) << "helper-guarded call was not recognized";
  EXPECT_EQ(score.fn, 0u);
  EXPECT_EQ(count_of(result, MismatchKind::kSdkDeclaration), 0u);
}

// --- SDC -----------------------------------------------------------------------

TEST(DeclarationLint, MalformedDeclaredRangeIsReported) {
  AppBuilder b{"sdc-range", "com.test.sdc1", test_repo().spec()};
  b.sdk(16, 26, 20);  // maxSdk < targetSdk: self-contradictory
  const auto built = b.build();
  ASSERT_EQ(built.truth.real_count(MismatchKind::kSdkDeclaration), 1u);

  const AnalysisResult result = test_tool().analyze(built.apk);
  ASSERT_TRUE(result.completed);
  const Score score = score_detections(built.truth, result.mismatches,
                                       MismatchKind::kSdkDeclaration);
  EXPECT_EQ(score.tp, 1u);
  EXPECT_EQ(score.fp, 0u);
  EXPECT_EQ(score.fn, 0u);
  const auto it = std::find_if(
      result.mismatches.begin(), result.mismatches.end(),
      [](const Mismatch& m) { return m.kind == MismatchKind::kSdkDeclaration; });
  ASSERT_NE(it, result.mismatches.end());
  EXPECT_EQ(it->subject.name, "declared-range");
}

TEST(DeclarationLint, UnusedDangerousPermissionIsReported) {
  AppBuilder b{"sdc-perm", "com.test.sdc2", test_repo().spec()};
  b.sdk(16, 26);
  b.declare_unused_permission("android.permission.CAMERA");
  const auto built = b.build();
  ASSERT_EQ(built.truth.real_count(MismatchKind::kSdkDeclaration), 1u);

  const AnalysisResult result = test_tool().analyze(built.apk);
  ASSERT_TRUE(result.completed);
  const Score score = score_detections(built.truth, result.mismatches,
                                       MismatchKind::kSdkDeclaration);
  EXPECT_EQ(score.tp, 1u);
  EXPECT_EQ(score.fp, 0u);
  EXPECT_EQ(score.fn, 0u);
  const auto it = std::find_if(
      result.mismatches.begin(), result.mismatches.end(),
      [](const Mismatch& m) { return m.kind == MismatchKind::kSdkDeclaration; });
  ASSERT_NE(it, result.mismatches.end());
  EXPECT_EQ(it->permission, "android.permission.CAMERA");
}

TEST(DeclarationLint, UsedDangerousPermissionIsNotFlagged) {
  // The permission stratum's own requests must never trip the lint: a
  // permission with a reaching use is not over-declared.
  AppBuilder b{"sdc-used", "com.test.sdc3", test_repo().spec()};
  b.sdk(16, 26);
  b.permission_use(catalog::camera_open());
  const auto built = b.build();

  const AnalysisResult result = test_tool().analyze(built.apk);
  ASSERT_TRUE(result.completed);
  for (const auto& m : result.mismatches)
    if (m.kind == MismatchKind::kSdkDeclaration)
      FAIL() << "spurious SDC on a used permission: " << m.to_string();
}

TEST(DeclarationLint, VacuousGuardsAreReportedBothWays) {
  for (const bool always_true : {true, false}) {
    SCOPED_TRACE(always_true ? "always-true" : "always-false");
    AppBuilder b{"sdc-guard", "com.test.sdc4", test_repo().spec()};
    b.sdk(16, 26);
    b.vacuous_sdk_guard(always_true);
    const auto built = b.build();
    ASSERT_EQ(built.truth.real_count(MismatchKind::kSdkDeclaration), 1u);

    const AnalysisResult result = test_tool().analyze(built.apk);
    ASSERT_TRUE(result.completed);
    const Score score = score_detections(built.truth, result.mismatches,
                                         MismatchKind::kSdkDeclaration);
    EXPECT_EQ(score.tp, 1u);
    EXPECT_EQ(score.fp, 0u);
    EXPECT_EQ(score.fn, 0u);
  }
}

TEST(DeclarationLint, MeaningfulGuardIsNotVacuous) {
  // A live SDK_INT check that splits the declared range must stay silent.
  const ApiUse api = catalog::get_color_state_list();  // introduced at 23
  AppBuilder b{"sdc-live", "com.test.sdc5", test_repo().spec()};
  b.sdk(16, 26);
  b.api_call(api, GuardMode::kLocal);
  const auto built = b.build();

  const AnalysisResult result = test_tool().analyze(built.apk);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(count_of(result, MismatchKind::kSdkDeclaration), 0u);
}

// --- taxonomy wiring -----------------------------------------------------------

TEST(DetectorTaxonomy, OnlySaintDroidClaimsTheNewFamilies) {
  SaintDroid& saint = test_tool();
  EXPECT_TRUE(saint.detects(MismatchKind::kSemanticChange));
  EXPECT_TRUE(saint.detects(MismatchKind::kSdkDeclaration));

  CidAnalyzer cid{test_repo()};
  CiderAnalyzer cider;
  LintAnalyzer lint{test_repo()};
  for (const Analyzer* tool :
       {static_cast<const Analyzer*>(&cid),
        static_cast<const Analyzer*>(&cider),
        static_cast<const Analyzer*>(&lint)}) {
    EXPECT_FALSE(tool->detects(MismatchKind::kSemanticChange))
        << tool->name();
    EXPECT_FALSE(tool->detects(MismatchKind::kSdkDeclaration))
        << tool->name();
  }
}

TEST(DetectorTaxonomy, StrataCorpusScoresPerfectlyOnItsLedger) {
  // A small strata-enabled corpus end-to-end: every seeded SEM/SDC issue
  // found, nothing invented (the full-size version of this gate runs in
  // bench_table2_accuracy).
  CorpusConfig config;
  config.app_count = 12;
  config.size_base = 120.0;
  config.size_spread = 1.5;
  config.semantic_app_fraction = 0.7;
  config.declaration_issue_fraction = 0.6;
  config.helper_guard_fraction = 0.5;
  const RealWorldCorpus corpus{test_repo(), config};
  const auto apps = corpus.generate_range(0, config.app_count);

  std::size_t real_sem = 0;
  std::size_t real_sdc = 0;
  for (const auto& app : apps) {
    real_sem += app.truth.real_count(MismatchKind::kSemanticChange);
    real_sdc += app.truth.real_count(MismatchKind::kSdkDeclaration);
  }
  ASSERT_GT(real_sem, 0u);
  ASSERT_GT(real_sdc, 0u);

  const SuiteResult suite = run_suite(test_tool(), apps);
  EXPECT_EQ(suite.failures, 0);
  EXPECT_EQ(suite.aggregate.sem.tp, real_sem);
  EXPECT_EQ(suite.aggregate.sem.fp, 0u);
  EXPECT_EQ(suite.aggregate.sem.fn, 0u);
  EXPECT_EQ(suite.aggregate.sdc.tp, real_sdc);
  EXPECT_EQ(suite.aggregate.sdc.fp, 0u);
  EXPECT_EQ(suite.aggregate.sdc.fn, 0u);
}

// --- the compatibility keystone -------------------------------------------------

TEST(DetectorCompat, LegacyCorpusRowsByteIdenticalWithDetectorsEnabled) {
  // Legacy-config corpus (no SEM/SDC strata): the new detectors must be
  // invisible — per-row canonical journal bytes equal between a
  // detectors-on and a detectors-off run, for every jobs value. This is
  // the "existing three classes byte-identical" acceptance criterion.
  const FrameworkRepository& repo = test_repo();
  CorpusConfig config;
  config.app_count = 40;
  config.size_base = 120.0;
  config.size_spread = 1.5;
  config.api_issue_mean = 6.0;
  const RealWorldCorpus corpus{repo, config};
  const auto apps = corpus.generate_range(0, config.app_count, 4);

  const auto db = std::make_shared<const ApiDatabase>(
      ApiDatabase::mine(repo, 4));
  SaintDroidOptions legacy_options;
  legacy_options.amd.detect_semantics = false;
  legacy_options.amd.detect_declarations = false;

  for (const int jobs : {1, 2, 8}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    const SuiteResult with = run_suite_parallel(
        [&] { return std::make_unique<SaintDroid>(repo, db); }, apps, jobs);
    const SuiteResult without = run_suite_parallel(
        [&] {
          return std::make_unique<SaintDroid>(repo, db, legacy_options);
        },
        apps, jobs);
    ASSERT_EQ(with.rows.size(), without.rows.size());
    for (std::size_t i = 0; i < with.rows.size(); ++i)
      EXPECT_EQ(canonical_row_bytes(with.rows[i]),
                canonical_row_bytes(without.rows[i]))
          << "app=" << apps[i].apk.name;
  }
}

}  // namespace
}  // namespace saintdroid
