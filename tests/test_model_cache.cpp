// The on-disk model cache (.sdmc): correctness of the container round
// trips, the repository's substrate store/hit path, and — the load-bearing
// property — *warm ≡ cold*: a process that starts from a populated cache
// (ApiDatabase loaded, substrates rebound from persisted tables) produces
// byte-identical canonical journal rows to a process that mines everything
// from scratch, over a 200-app corpus, at jobs ∈ {1, 2, 8}. Around that
// sit stale-version eviction (an old-format entry is re-mined and
// overwritten, never trusted) and concurrent shard writers racing on one
// shared cache directory (the TSan leg of ci/sanitize.sh runs this binary
// for exactly that test).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "adf/repository.hpp"
#include "core/model_cache.hpp"
#include "core/saintdroid.hpp"
#include "core/semantics.hpp"
#include "support/errors.hpp"
#include "support/sdmc.hpp"
#include "workload/corpus.hpp"
#include "workload/harness.hpp"
#include "workload/journal.hpp"

namespace saintdroid {
namespace {

/// One framework config shared by every repository instance in this file:
/// equal configs -> equal specs -> equal fingerprints, so instances
/// interchangeably share cache entries. Smaller than the standard config
/// because the tests construct many fresh repositories.
FrameworkConfig small_config() {
  FrameworkConfig cfg;
  cfg.bulk_classes = 400;
  cfg.bulk_packages = 12;
  return cfg;
}

/// A fresh, empty cache directory under the test temp root.
std::string fresh_cache_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "model_cache_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// The byte-identity currency (same as the shard differential): canonical
/// journal lines (seconds zeroed), sorted.
std::string sorted_canonical(std::span<const SuiteAppRow> rows) {
  std::vector<std::string> lines;
  lines.reserve(rows.size());
  for (const auto& row : rows) lines.push_back(canonical_row_bytes(row));
  std::sort(lines.begin(), lines.end());
  std::string bytes;
  for (const auto& line : lines) {
    bytes += line;
    bytes += '\n';
  }
  return bytes;
}

TEST(ModelCacheDb, MissMinesStoresThenServesByteIdentical) {
  const FrameworkRepository repo{small_config()};
  const ModelCache cache{fresh_cache_dir("apidb")};

  bool served = true;
  const auto mined = cache.api_database(repo, 2, &served);
  EXPECT_FALSE(served);  // empty directory: this run paid the mining pass
  EXPECT_TRUE(
      std::filesystem::exists(cache.api_database_path(repo)));

  const auto loaded = cache.api_database(repo, 2, &served);
  EXPECT_TRUE(served);  // second process skips mining entirely
  EXPECT_EQ(mined->method_count(), loaded->method_count());
  EXPECT_EQ(mined->callback_count(), loaded->callback_count());
  EXPECT_EQ(mined->permission_mapping_count(),
            loaded->permission_mapping_count());
  // serialize(parse(b)) == b: the cached database is the mined one,
  // byte-for-byte in its canonical form.
  EXPECT_EQ(mined->serialize(), loaded->serialize());
}

TEST(ModelCacheDb, ForeignFingerprintMissesAndRemines) {
  // A cache populated by one framework must never serve another: the entry
  // is keyed by fingerprint, so a different config re-mines.
  const std::string dir = fresh_cache_dir("foreign");
  const ModelCache cache{dir};
  const FrameworkRepository repo{small_config()};
  (void)cache.api_database(repo);

  FrameworkConfig other_cfg = small_config();
  other_cfg.seed ^= 1;
  const FrameworkRepository other{other_cfg};
  ASSERT_NE(repo.fingerprint(), other.fingerprint());
  EXPECT_FALSE(cache.try_load_api_database(other).has_value());
  bool served = true;
  (void)cache.api_database(other, 1, &served);
  EXPECT_FALSE(served);
  // Both entries now coexist (distinct file names).
  EXPECT_TRUE(cache.try_load_api_database(repo).has_value());
  EXPECT_TRUE(cache.try_load_api_database(other).has_value());
}

TEST(ModelCacheDb, PrePrVersionEntriesRefusedThenReminedAndRestored) {
  // The shape an upgrade leaves behind: apidb and semtab entries written
  // by a build with a different container version. Both must be refused
  // cleanly — miss, re-mine/re-derive, overwrite — never loaded.
  const std::string dir = fresh_cache_dir("version_bump");
  const ModelCache cache{dir};
  const FrameworkRepository repo{small_config()};
  const auto fresh = cache.api_database(repo, 2);
  const auto db_reference = fresh->serialize();
  ASSERT_NE(fresh->semantics(), nullptr);
  const auto sem_reference = fresh->semantics()->serialize();

  const auto corrupt_version = [](const std::string& path) {
    auto blob = read_file_bytes(path);
    ASSERT_TRUE(blob.has_value()) << path;
    (*blob)[4] ^= 0x20;  // version is the u32 at bytes 4..7
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    out.write(reinterpret_cast<const char*>(blob->data()),
              static_cast<std::streamsize>(blob->size()));
  };
  corrupt_version(cache.api_database_path(repo));
  corrupt_version(cache.semantic_table_path(repo));

  EXPECT_FALSE(cache.try_load_api_database(repo).has_value());
  bool served = true;
  const auto remined = cache.api_database(repo, 2, &served);
  EXPECT_FALSE(served);  // the stale entry cost this run the mining pass
  EXPECT_EQ(remined->serialize(), db_reference);
  ASSERT_NE(remined->semantics(), nullptr);
  EXPECT_EQ(remined->semantics()->serialize(), sem_reference);

  // Both entries were overwritten in place: the next process is warm
  // again, semantic table included.
  const auto healthy = cache.api_database(repo, 2, &served);
  EXPECT_TRUE(served);
  EXPECT_EQ(healthy->serialize(), db_reference);
  ASSERT_NE(healthy->semantics(), nullptr);
  EXPECT_EQ(healthy->semantics()->serialize(), sem_reference);
}

TEST(ModelCacheSubstrate, RebindMatchesFullBuildExactly) {
  const FrameworkRepository repo{small_config()};
  const int level = 23;
  const auto built = repo.substrate(level);
  const auto tables = built->serialize_tables();

  const FrameworkSubstrate rebound{repo.image(level), level,
                                   SubstrateOptions{}, tables};
  EXPECT_EQ(rebound.class_count(), built->class_count());
  EXPECT_EQ(rebound.method_count(), built->method_count());
  EXPECT_EQ(rebound.total_footprint(), built->total_footprint());
  // Structural identity down to the last edge: re-serializing the rebound
  // substrate reproduces the exact table bytes.
  EXPECT_EQ(rebound.serialize_tables(), tables);

  const LoadedClass* cls = rebound.find_class("android/app/Activity");
  ASSERT_NE(cls, nullptr);
  EXPECT_NE(FrameworkSubstrate::entry_of(*cls), nullptr);

  // The unindexed variant round-trips through its (much smaller) tables.
  SubstrateOptions lean;
  lean.index_methods = false;
  const auto lean_built = repo.substrate(level, lean);
  const auto lean_tables = lean_built->serialize_tables();
  const FrameworkSubstrate lean_rebound{repo.image(level), level, lean,
                                        lean_tables};
  EXPECT_EQ(lean_rebound.serialize_tables(), lean_tables);
  EXPECT_EQ(lean_rebound.method_count(), 0u);
}

TEST(ModelCacheSubstrate, RepositoryStoresThenLaterInstanceHits) {
  const std::string dir = fresh_cache_dir("repo_hit");

  const FrameworkRepository writer{small_config()};
  writer.set_model_cache_dir(dir);
  const auto built = writer.substrate(23);
  EXPECT_EQ(writer.substrate_cache_hits(), 0u);
  EXPECT_EQ(writer.substrate_cache_stores(), 1u);
  EXPECT_EQ(writer.substrate_build_count(), 1u);

  const FrameworkRepository reader{small_config()};
  reader.set_model_cache_dir(dir);
  const auto rebound = reader.substrate(23);
  EXPECT_EQ(reader.substrate_cache_hits(), 1u);
  EXPECT_EQ(reader.substrate_cache_stores(), 0u);
  EXPECT_EQ(rebound->serialize_tables(), built->serialize_tables());

  // Options are part of the key: the unindexed substrate is a distinct
  // entry, so its first request stores rather than hits.
  SubstrateOptions lean;
  lean.index_methods = false;
  (void)reader.substrate(23, lean);
  EXPECT_EQ(reader.substrate_cache_hits(), 1u);
  EXPECT_EQ(reader.substrate_cache_stores(), 1u);
}

TEST(ModelCacheSubstrate, StaleVersionEntryIsEvictedAndOverwritten) {
  const std::string dir = fresh_cache_dir("stale");
  const FrameworkRepository writer{small_config()};
  writer.set_model_cache_dir(dir);
  const auto original = writer.substrate(23)->serialize_tables();

  // Corrupt the stored container's version field in place — the shape a
  // leftover cache from an older build has after a format bump.
  const std::string entry =
      dir + "/substrate-" + writer.fingerprint() + "-L23-m1.sdmc";
  auto blob = read_file_bytes(entry);
  ASSERT_TRUE(blob.has_value());
  (*blob)[4] ^= 0x20;  // version is the u32 at bytes 4..7
  std::ofstream out{entry, std::ios::binary | std::ios::trunc};
  out.write(reinterpret_cast<const char*>(blob->data()),
            static_cast<std::streamsize>(blob->size()));
  out.close();

  // The stale entry must not load: the next instance re-mines and
  // overwrites it...
  const FrameworkRepository evictor{small_config()};
  evictor.set_model_cache_dir(dir);
  const auto rebuilt = evictor.substrate(23);
  EXPECT_EQ(evictor.substrate_cache_hits(), 0u);
  EXPECT_EQ(evictor.substrate_cache_stores(), 1u);
  EXPECT_EQ(rebuilt->serialize_tables(), original);

  // ...after which the directory is healthy again.
  const FrameworkRepository reader{small_config()};
  reader.set_model_cache_dir(dir);
  (void)reader.substrate(23);
  EXPECT_EQ(reader.substrate_cache_hits(), 1u);
}

TEST(ModelCacheSubstrate, ConcurrentWritersShareOneDirectorySafely) {
  // N fresh repositories (as N shard processes would be) race on one empty
  // cache directory across several levels. Rename-atomic publication means
  // every writer either rebinds a complete entry or builds and publishes
  // its own identical copy — never reads a torn file. This is the test the
  // TSan leg pins.
  const std::string dir = fresh_cache_dir("race");
  constexpr int kWriters = 4;
  const int levels[] = {21, 23, 25};

  std::vector<std::vector<std::vector<std::uint8_t>>> tables(kWriters);
  std::vector<std::thread> threads;
  threads.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      const FrameworkRepository repo{small_config()};
      repo.set_model_cache_dir(dir);
      for (const int level : levels)
        tables[static_cast<std::size_t>(w)].push_back(
            repo.substrate(level)->serialize_tables());
    });
  }
  for (auto& t : threads) t.join();

  for (int w = 1; w < kWriters; ++w)
    EXPECT_EQ(tables[static_cast<std::size_t>(w)], tables[0]) << "w=" << w;

  // The settled directory serves a late reader from cache at every level.
  const FrameworkRepository reader{small_config()};
  reader.set_model_cache_dir(dir);
  for (const int level : levels) (void)reader.substrate(level);
  EXPECT_EQ(reader.substrate_cache_hits(), 3u);
}

// --- the warm ≡ cold differential ----------------------------------------------

constexpr int kCorpusSize = 200;

/// 200 corpus apps and the cold-start reference rows (fresh repository,
/// mined database, no cache anywhere), built once.
class WarmColdSuite : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    repo_ = new FrameworkRepository{small_config()};
    CorpusConfig config;
    config.app_count = kCorpusSize;
    config.size_base = 120.0;  // small apps, same generative structure
    config.size_spread = 1.5;
    config.api_issue_mean = 6.0;
    // SEM/SDC strata on: warm ≡ cold must hold with the semantic table
    // riding in the cache and the newer detector families firing.
    config.semantic_app_fraction = 0.4;
    config.declaration_issue_fraction = 0.3;
    config.helper_guard_fraction = 0.5;
    const RealWorldCorpus corpus{*repo_, config};
    apps_ = new std::vector<BenchApp>{
        corpus.generate_range(0, kCorpusSize, 8)};
    db_ = new std::shared_ptr<const ApiDatabase>{
        std::make_shared<const ApiDatabase>(ApiDatabase::mine(*repo_, 8))};
    reference_ = new std::string{sorted_canonical(
        run_suite_parallel(
            [] { return std::make_unique<SaintDroid>(*repo_, *db_); },
            *apps_, 4)
            .rows)};
  }

  static void TearDownTestSuite() {
    delete reference_;
    delete db_;
    delete apps_;
    delete repo_;
    reference_ = nullptr;
    db_ = nullptr;
    apps_ = nullptr;
    repo_ = nullptr;
  }

  static FrameworkRepository* repo_;
  static std::vector<BenchApp>* apps_;
  static std::shared_ptr<const ApiDatabase>* db_;
  static std::string* reference_;
};

FrameworkRepository* WarmColdSuite::repo_ = nullptr;
std::vector<BenchApp>* WarmColdSuite::apps_ = nullptr;
std::shared_ptr<const ApiDatabase>* WarmColdSuite::db_ = nullptr;
std::string* WarmColdSuite::reference_ = nullptr;

TEST_F(WarmColdSuite, CachedRunsEqualMinedRunsAcrossJobs) {
  // One shared cache directory across every jobs value, exactly as shard
  // processes share one. The first run populates it (mining once); every
  // later run is fully warm — database served from cache, substrates
  // rebound — and every run's canonical rows must equal the cold
  // reference byte-for-byte.
  const std::string dir = fresh_cache_dir("differential");
  bool first = true;
  for (const int jobs : {1, 2, 8}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    const FrameworkRepository repo{small_config()};
    const ModelCache cache{dir};
    cache.attach_substrate_cache(repo);

    bool served = false;
    const auto db = cache.api_database(repo, jobs, &served);
    EXPECT_EQ(served, !first);
    EXPECT_EQ(db->serialize(), (*db_)->serialize());

    const SuiteResult suite = run_suite_parallel(
        [&] { return std::make_unique<SaintDroid>(repo, db); }, *apps_,
        jobs);
    EXPECT_EQ(sorted_canonical(suite.rows), *reference_);
    if (!first) {
      // A warm process re-derives nothing: every substrate it touched was
      // rebound from the cache, none stored anew.
      EXPECT_GT(repo.substrate_cache_hits(), 0u);
      EXPECT_EQ(repo.substrate_cache_stores(), 0u);
    }
    first = false;
  }
}

TEST_F(WarmColdSuite, HarnessOptionsAttachTheCacheBeforeWarmup) {
  // The SuiteRunOptions knob is what the CLI rides: setting
  // (model_cache_dir, repository) must attach the cache before warmup so
  // the warmed substrates populate/hit it — and rows stay identical.
  const std::string dir = fresh_cache_dir("harness_knob");
  for (int round = 0; round < 2; ++round) {
    SCOPED_TRACE("round=" + std::to_string(round));
    const FrameworkRepository repo{small_config()};
    SuiteRunOptions options;
    options.jobs = 2;
    options.model_cache_dir = dir;
    options.repository = &repo;
    options.warmup = [&] {
      (void)repo.substrate(FrameworkRepository::clamp_level(
          (*apps_)[0].apk.manifest.target_sdk));
    };
    const auto db = ModelCache{dir}.api_database(repo, 2);
    const SuiteResult suite = run_suite_parallel(
        [&] { return std::make_unique<SaintDroid>(repo, db); }, *apps_,
        options);
    EXPECT_EQ(sorted_canonical(suite.rows), *reference_);
    if (round == 1) EXPECT_GT(repo.substrate_cache_hits(), 0u);
  }
}

}  // namespace
}  // namespace saintdroid
