// End-to-end smoke test: build a small app with seeded mismatches, run
// SAINTDroid, and check the detections line up with the ledger.
#include <gtest/gtest.h>

#include "adf/repository.hpp"
#include "core/saintdroid.hpp"
#include "workload/app_builder.hpp"

namespace saintdroid {
namespace {

TEST(Smoke, EndToEnd) {
  const auto& repo = FrameworkRepository::standard();
  AppBuilder b{"smoke", "com.example.smoke", repo.spec()};
  b.sdk(21, 28);
  b.api_call(catalog::get_color_state_list());                    // real
  b.api_call(catalog::get_color_state_list(), GuardMode::kLocal); // benign
  b.callback_override(catalog::drawable_hotspot_changed());       // benign (21 !< 21)
  b.callback_override(catalog::on_provide_structure());           // real (23 > 21)
  b.permission_use(catalog::camera_open());                       // request (tgt 28)
  auto built = b.build();

  SaintDroid tool{repo};
  const AnalysisResult result = tool.analyze(built.apk);
  ASSERT_TRUE(result.completed);
  for (const auto& m : result.mismatches)
    fprintf(stderr, "detected: %s\n", m.to_string().c_str());
  for (const auto& i : built.truth.issues)
    fprintf(stderr, "seeded (%s real=%d): %s\n", i.tag.c_str(), i.real,
            i.key().c_str());

  const Score s = score_detections(built.truth, result.mismatches);
  EXPECT_EQ(s.fp, 0u);
  EXPECT_EQ(s.fn, 0u);
  EXPECT_EQ(s.tp, built.truth.real_count());
}

}  // namespace
}  // namespace saintdroid
