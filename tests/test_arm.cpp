// Tests for the ARM database miner: lifecycle mining, automatic callback
// discovery, and the PScout-style (direct + transitive) permission map.
#include <gtest/gtest.h>

#include "adf/repository.hpp"
#include "core/arm.hpp"
#include "support/errors.hpp"
#include "workload/catalog.hpp"

namespace saintdroid {
namespace {

const FrameworkRepository& repo() {
  static const FrameworkRepository instance{[] {
    FrameworkConfig cfg;
    cfg.bulk_classes = 120;
    return cfg;
  }()};
  return instance;
}

const ApiDatabase& db() {
  static const ApiDatabase instance = ApiDatabase::mine(repo());
  return instance;
}

// --- lifecycle mining -----------------------------------------------------------

TEST(Arm, MinedLifecyclesMatchCuratedFacts) {
  const auto levels = [&](const ApiUse& api) {
    return db().defined_levels(api.declared_id());
  };
  EXPECT_EQ(levels(catalog::get_color_state_list()),
            ApiInterval(23, kMaxApiLevel));
  EXPECT_EQ(levels(catalog::get_fragment_manager()),
            ApiInterval(11, kMaxApiLevel));
  EXPECT_EQ(levels(catalog::set_background()), ApiInterval(16, kMaxApiLevel));
  // AndroidHttpClient.execute: introduced 8, removed 23.
  EXPECT_EQ(levels(catalog::http_client_execute()), ApiInterval(8, 22));
  EXPECT_FALSE(
      db().defined_levels(MethodId{"a/b/C", "nope", "()V"}).has_value());
}

TEST(Arm, ContainsMatchesDefinedLevels) {
  const MethodId api = catalog::get_color_state_list().declared_id();
  for (int level = kMinApiLevel; level <= kMaxApiLevel; ++level)
    EXPECT_EQ(db().contains(api, level), level >= 23) << level;
}

// Property over the whole spec: mined presence equals the spec lifecycle
// for every curated + bulk method (the dispatcher is the only synthetic).
TEST(Arm, MiningAgreesWithSpecEverywhere) {
  int checked = 0;
  for (const auto& cls : repo().spec().classes) {
    for (const auto& m : cls.methods) {
      const MethodId id{cls.name, m.name,
                        make_descriptor(m.return_type, m.params)};
      const auto mined = db().defined_levels(id);
      const ApiInterval expected =
          m.life.existence().intersect(cls.life.existence());
      if (expected.empty()) {
        EXPECT_FALSE(mined.has_value()) << id.to_string();
      } else {
        ASSERT_TRUE(mined.has_value()) << id.to_string();
        EXPECT_EQ(*mined, expected) << id.to_string();
      }
      ++checked;
    }
  }
  EXPECT_GT(checked, 500);
}

// --- callback mining --------------------------------------------------------------

TEST(Arm, CuratedCallbacksAreMined) {
  EXPECT_TRUE(db().is_callback(catalog::on_attach_context().declared_id()));
  EXPECT_TRUE(
      db().is_callback(catalog::drawable_hotspot_changed().declared_id()));
  EXPECT_TRUE(db().is_callback(catalog::on_trim_memory().declared_id()));
  EXPECT_TRUE(db().is_callback(
      MethodId{"android/view/View$OnClickListener", "onClick",
               "(Landroid/view/View;)V"}));
}

TEST(Arm, NonCallbacksAreNotMined) {
  EXPECT_FALSE(db().is_callback(catalog::get_color_state_list().declared_id()));
  EXPECT_FALSE(db().is_callback(catalog::set_background().declared_id()));
}

TEST(Arm, CallbackSetMatchesSpecFlags) {
  for (const auto& cls : repo().spec().classes) {
    for (const auto& m : cls.methods) {
      if (cls.life.existence().empty()) continue;
      const MethodId id{cls.name, m.name,
                        make_descriptor(m.return_type, m.params)};
      if (m.callback && !m.life.existence()
                             .intersect(cls.life.existence())
                             .empty()) {
        EXPECT_TRUE(db().is_callback(id)) << id.to_string();
      }
    }
  }
}

// --- permission map ---------------------------------------------------------------

TEST(Arm, DirectPermissionsMined) {
  const auto& camera = db().permissions_for(
      catalog::camera_open().declared_id());
  ASSERT_EQ(camera.size(), 1u);
  EXPECT_EQ(camera[0], "android.permission.CAMERA");
  EXPECT_TRUE(
      db().permissions_for(catalog::set_background().declared_id()).empty());
}

TEST(Arm, TransitivePermissionsMined) {
  // insertImage itself enforces nothing; its body calls
  // ContentResolver.insert, which requires WRITE_EXTERNAL_STORAGE.
  const auto& perms =
      db().permissions_for(catalog::insert_image().declared_id());
  ASSERT_FALSE(perms.empty());
  EXPECT_NE(std::find(perms.begin(), perms.end(),
                      "android.permission.WRITE_EXTERNAL_STORAGE"),
            perms.end());
}

TEST(Arm, ClassAndNameIndexes) {
  EXPECT_TRUE(db().is_known_class("android/app/Activity"));
  EXPECT_FALSE(db().is_known_class("com/example/App"));
  EXPECT_TRUE(db().class_has_method_named("android/content/Context",
                                          "getColorStateList"));
  EXPECT_FALSE(db().class_has_method_named("android/content/Context",
                                           "noSuchThing"));
}

TEST(Arm, SerializeParseRoundTrip) {
  const auto bytes = db().serialize();
  const ApiDatabase back = ApiDatabase::parse(bytes);
  // Canonical encoding: re-serialization is byte-identical.
  EXPECT_EQ(back.serialize(), bytes);
  EXPECT_EQ(back.method_count(), db().method_count());
  EXPECT_EQ(back.callback_count(), db().callback_count());
  EXPECT_EQ(back.permission_mapping_count(), db().permission_mapping_count());
  // Queries behave identically.
  const MethodId api = catalog::get_color_state_list().declared_id();
  EXPECT_EQ(back.defined_levels(api), db().defined_levels(api));
  EXPECT_TRUE(back.is_callback(catalog::on_attach_context().declared_id()));
  EXPECT_EQ(back.permissions_for(catalog::camera_open().declared_id()),
            db().permissions_for(catalog::camera_open().declared_id()));
  EXPECT_TRUE(back.class_has_method_named("android/content/Context",
                                          "getColorStateList"));
}

TEST(Arm, ParseRejectsCorruptDatabase) {
  auto bytes = db().serialize();
  bytes[0] ^= 0xff;
  EXPECT_THROW(ApiDatabase::parse(bytes), ParseError);
  const auto good = db().serialize();
  std::span<const std::uint8_t> truncated(good.data(), good.size() / 2);
  EXPECT_THROW(ApiDatabase::parse(truncated), ParseError);
}

TEST(Arm, DatabaseScale) {
  EXPECT_GT(db().method_count(), 500u);
  EXPECT_GT(db().callback_count(), 20u);
  EXPECT_GT(db().permission_mapping_count(), 10u);
}

}  // namespace
}  // namespace saintdroid
