// Tests for the parallel batch engine: the support thread pool and the
// determinism contract of run_suite_parallel (identical rows to the serial
// harness for any worker count — the property every throughput number in
// BENCH_parallel.json silently depends on).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "adf/repository.hpp"
#include "core/saintdroid.hpp"
#include "support/thread_pool.hpp"
#include "workload/benchmarks.hpp"
#include "workload/harness.hpp"

namespace saintdroid {
namespace {

// --- thread pool ---------------------------------------------------------------

TEST(ThreadPool, RunsEveryTask) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> done;
  {
    ThreadPool pool{4};
    for (int i = 0; i < 100; ++i)
      done.push_back(pool.submit([&ran] { ++ran; }));
    for (auto& f : done) f.get();
    EXPECT_EQ(ran.load(), 100);
  }
}

TEST(ThreadPool, ReturnsTaskValues) {
  ThreadPool pool{2};
  auto a = pool.submit([] { return 7; });
  auto b = pool.submit([] { return std::string{"ok"}; });
  EXPECT_EQ(a.get(), 7);
  EXPECT_EQ(b.get(), "ok");
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool{2};
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error{"task failed"}; });
  auto good = pool.submit([] { return 1; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // One task's failure must not poison the pool.
  EXPECT_EQ(good.get(), 1);
}

TEST(ThreadPool, ReentrantSubmit) {
  // A running task enqueues follow-up work into its own pool; even a
  // single worker must execute it once the outer task returns.
  ThreadPool pool{1};
  std::promise<std::future<int>> inner_slot;
  auto outer = pool.submit([&] {
    inner_slot.set_value(pool.submit([] { return 42; }));
  });
  outer.get();
  EXPECT_EQ(inner_slot.get_future().get().get(), 42);
}

TEST(ThreadPool, JoinOnDestructDrainsQueue) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool{2};
    for (int i = 0; i < 32; ++i)
      (void)pool.submit([&ran] { ++ran; });
    // No explicit wait: the destructor must drain the queue and join.
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, ClampsZeroWorkersToOne) {
  ThreadPool pool{0};
  EXPECT_EQ(pool.worker_count(), 1u);
  EXPECT_EQ(pool.submit([] { return 3; }).get(), 3);
}

TEST(ThreadPool, ThrowingTasksDuringDrainDoNotDeadlockJoin) {
  // Queue far more throwing tasks than workers, then destroy the pool
  // without waiting: the destructor's drain must run every task, capture
  // each exception into its future, and join — never wedge a worker.
  std::vector<std::future<void>> done;
  {
    ThreadPool pool{2};
    for (int i = 0; i < 64; ++i)
      done.push_back(
          pool.submit([] { throw std::runtime_error{"drain boom"}; }));
  }
  for (auto& f : done) EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, SubmitRacingShutdownNeverStrandsTheFuture) {
  // A task submits follow-up work while the destructor is (most likely
  // already) stopping the pool. Whichever side of the race the submit
  // lands on — enqueued before the stop, or caller-runs after it — the
  // inner future must complete; a stranded future would deadlock get().
  std::promise<void> entered;
  std::promise<void> release;
  std::future<int> inner;
  std::thread releaser;
  {
    ThreadPool pool{1};
    auto outer = pool.submit([&] {
      entered.set_value();
      release.get_future().wait();
      inner = pool.submit([] { return 5; });
    });
    entered.get_future().wait();
    releaser = std::thread{[&release] {
      // Give ~ThreadPool (running on the test thread after this scope
      // exits) time to set stopping_ so the inner submit exercises the
      // caller-runs path.
      std::this_thread::sleep_for(std::chrono::milliseconds{50});
      release.set_value();
    }};
  }  // ~ThreadPool: stop + join; must not deadlock against the worker
  releaser.join();
  EXPECT_EQ(inner.get(), 5);
}

// --- run_suite_parallel determinism --------------------------------------------

void expect_scores_eq(const Score& a, const Score& b, const char* what) {
  EXPECT_EQ(a.tp, b.tp) << what;
  EXPECT_EQ(a.fp, b.fp) << what;
  EXPECT_EQ(a.fn, b.fn) << what;
}

void expect_family_eq(const FamilyScores& a, const FamilyScores& b) {
  expect_scores_eq(a.api, b.api, "api");
  expect_scores_eq(a.apc, b.apc, "apc");
  expect_scores_eq(a.prm, b.prm, "prm");
}

TEST(RunSuiteParallel, MatchesSerialRowForRowAtAnyJobCount) {
  const auto& repo = FrameworkRepository::standard();
  const auto apps = accuracy_bench(repo);
  ASSERT_FALSE(apps.empty());

  SaintDroid serial_tool{repo};
  const SuiteResult serial = run_suite(serial_tool, apps);

  const auto db = serial_tool.shared_database();
  const AnalyzerFactory factory = [&repo, &db] {
    return std::make_unique<SaintDroid>(repo, db);
  };

  for (const int jobs : {1, 2, 8}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    const SuiteResult parallel = run_suite_parallel(factory, apps, jobs);

    EXPECT_EQ(parallel.tool, serial.tool);
    EXPECT_EQ(parallel.failures, serial.failures);
    expect_family_eq(parallel.aggregate, serial.aggregate);

    ASSERT_EQ(parallel.rows.size(), serial.rows.size());
    for (std::size_t i = 0; i < serial.rows.size(); ++i) {
      SCOPED_TRACE("row " + std::to_string(i));
      const SuiteAppRow& s = serial.rows[i];
      const SuiteAppRow& p = parallel.rows[i];
      EXPECT_EQ(p.app, s.app);  // ordering: rows land at input indexes
      EXPECT_EQ(p.completed, s.completed);
      EXPECT_EQ(p.failure_reason, s.failure_reason);
      expect_family_eq(p.scores, s.scores);
      // Usage is deterministic except wall-clock seconds.
      EXPECT_EQ(p.usage.peak_bytes, s.usage.peak_bytes);
      EXPECT_EQ(p.usage.loaded_classes, s.usage.loaded_classes);
    }
  }
}

TEST(RunSuiteParallel, SharedDatabaseIsNotRemined) {
  const auto& repo = FrameworkRepository::standard();
  SaintDroid a{repo};
  SaintDroid b{repo, a.shared_database()};
  EXPECT_EQ(&a.database(), &b.database());
}

TEST(RunSuiteParallel, EmptySuite) {
  const auto& repo = FrameworkRepository::standard();
  SaintDroid tool{repo};
  const auto db = tool.shared_database();
  const AnalyzerFactory factory = [&repo, &db] {
    return std::make_unique<SaintDroid>(repo, db);
  };
  const SuiteResult suite = run_suite_parallel(factory, {}, 8);
  EXPECT_TRUE(suite.rows.empty());
  EXPECT_EQ(suite.failures, 0);
}

}  // namespace
}  // namespace saintdroid
