// Tests for the explicit call-graph builder.
#include <gtest/gtest.h>

#include "adf/repository.hpp"
#include "clvm/clvm.hpp"
#include "core/callgraph.hpp"
#include "workload/app_builder.hpp"

namespace saintdroid {
namespace {

namespace cat = catalog;

const FrameworkRepository& repo() { return FrameworkRepository::standard(); }

CallGraph graph_of(const Apk& apk) {
  const int level = FrameworkRepository::clamp_level(apk.manifest.target_sdk);
  static std::vector<std::unique_ptr<ClassLoaderVm>> keep_alive;
  keep_alive.push_back(std::make_unique<ClassLoaderVm>(
      apk, repo().image(level), true, &repo().class_index(level)));
  ClassHierarchy hierarchy{*keep_alive.back()};
  return CallGraph::build(apk, hierarchy);
}

TEST(CallGraph, EntryPointsAndEdges) {
  AppBuilder b{"cg", "com.cg.app", repo().spec()};
  b.sdk(14, 27);
  b.api_call(cat::get_color_state_list());
  auto built = b.build();
  // Keep the apk alive for the graph's node lifetime.
  static Apk apk = std::move(built.apk);
  const CallGraph graph = graph_of(apk);

  // onCreate is an entry (component + override of Activity.onCreate).
  const auto on_create = graph.find(MethodId{
      "com/cg/app/MainActivity", "onCreate", "(Landroid/os/Bundle;)V"});
  ASSERT_NE(on_create, kNoIndex);
  EXPECT_TRUE(graph.nodes()[on_create].is_entry);

  // onCreate -> seed0 -> Context.getColorStateList (framework boundary).
  const auto seed = graph.find(MethodId{"com/cg/app/MainActivity", "seed0",
                                        "()V"});
  ASSERT_NE(seed, kNoIndex);
  const auto api = graph.find(MethodId{
      "android/content/Context", "getColorStateList",
      "(I)Landroid/content/res/ColorStateList;"});
  ASSERT_NE(api, kNoIndex);
  EXPECT_TRUE(graph.nodes()[api].is_framework);

  bool edge_entry_to_seed = false;
  bool edge_seed_to_api = false;
  for (const auto& e : graph.edges()) {
    if (e.caller == on_create && e.callee == seed) edge_entry_to_seed = true;
    if (e.caller == seed && e.callee == api) edge_seed_to_api = true;
  }
  EXPECT_TRUE(edge_entry_to_seed);
  EXPECT_TRUE(edge_seed_to_api);
  EXPECT_FALSE(graph.out_edges(seed).empty());
}

TEST(CallGraph, DeadCodeExcluded) {
  AppBuilder b{"cg-dead", "com.cg.dead", repo().spec()};
  b.sdk(14, 27);
  b.api_call(cat::get_color_state_list(), GuardMode::kNone,
             Placement::kDeadCode);
  auto built = b.build();
  static Apk apk = std::move(built.apk);
  const CallGraph graph = graph_of(apk);
  for (const auto& node : graph.nodes())
    EXPECT_EQ(node.id.class_name.find("/util/Dead"), std::string::npos);
}

TEST(CallGraph, LateBoundIncluded) {
  AppBuilder b{"cg-late", "com.cg.late", repo().spec()};
  b.sdk(14, 27);
  b.api_call(cat::get_color_state_list(), GuardMode::kNone,
             Placement::kSecondaryDex);
  auto built = b.build();
  static Apk apk = std::move(built.apk);
  const CallGraph graph = graph_of(apk);
  bool plugin_seen = false;
  for (const auto& node : graph.nodes())
    plugin_seen |= node.id.class_name.find("/plugin/") != std::string::npos;
  EXPECT_TRUE(plugin_seen);
}

TEST(CallGraph, UnresolvableBecomesBoundaryNode) {
  AppBuilder b{"cg-hidden", "com.cg.hidden", repo().spec()};
  b.sdk(14, 27);
  b.api_call(cat::get_color_state_list(), GuardMode::kHidden);
  auto built = b.build();
  static Apk apk = std::move(built.apk);
  const CallGraph graph = graph_of(apk);
  const auto check = graph.find(
      MethodId{"com/runtime/GeneratedCheck", "isAtLeast", "(I)Z"});
  ASSERT_NE(check, kNoIndex);
  EXPECT_TRUE(graph.nodes()[check].is_framework);  // terminal boundary
}

TEST(CallGraph, DotOutputWellFormed) {
  AppBuilder b{"cg-dot", "com.cg.dot", repo().spec()};
  b.sdk(14, 27);
  b.api_call(cat::get_color_state_list());
  auto built = b.build();
  static Apk apk = std::move(built.apk);
  const CallGraph graph = graph_of(apk);
  const std::string dot = graph.to_dot("cg-dot");
  EXPECT_EQ(dot.rfind("digraph", 0), 0u);
  EXPECT_NE(dot.find("shape=ellipse"), std::string::npos);  // framework node
  EXPECT_NE(dot.find("style=bold"), std::string::npos);     // entry node
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

}  // namespace
}  // namespace saintdroid
