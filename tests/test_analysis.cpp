// Tests for CFG construction and the SDK_INT guard dataflow, including
// pointwise property checks of interval refinement against concrete
// comparison semantics.
#include <gtest/gtest.h>

#include "analysis/cfg.hpp"
#include "analysis/guards.hpp"
#include "dex/builder.hpp"
#include "support/rng.hpp"

namespace saintdroid {
namespace {

/// Builds a one-method dex and hands back (dex, code).
struct Fixture {
  DexFile dex;
  const MethodCode* code;
};

Fixture build_method(const std::function<void(MethodBuilder&)>& author) {
  DexBuilder b;
  auto& cls = b.add_class("t/T");
  auto& m = cls.add_method("f");
  m.registers(8);
  author(m);
  Fixture fx{b.build(), nullptr};
  fx.code = &*fx.dex.classes()[0].methods[0].code;
  return fx;
}

// --- CFG ---------------------------------------------------------------------

TEST(Cfg, StraightLineIsOneBlock) {
  const Fixture fx = build_method([](MethodBuilder& m) {
    m.const_int(0, 1);
    m.const_int(1, 2);
    m.return_void();
  });
  const Cfg cfg = Cfg::build(*fx.code);
  ASSERT_EQ(cfg.block_count(), 1u);
  EXPECT_EQ(cfg.block(0).first, 0u);
  EXPECT_EQ(cfg.block(0).last, 2u);
  EXPECT_EQ(cfg.block(0).fallthrough, kNoBlock);
  EXPECT_EQ(cfg.block(0).taken, kNoBlock);
}

TEST(Cfg, DiamondShape) {
  const Fixture fx = build_method([](MethodBuilder& m) {
    Label else_branch = m.new_label();
    Label join = m.new_label();
    m.const_int(0, 5);                      // @0 block A
    m.if_lit(CmpOp::kLt, 0, 3, else_branch); // @1
    m.const_int(1, 1);                      // @2 block B (fallthrough)
    m.goto_(join);                          // @3
    m.bind(else_branch);
    m.const_int(1, 2);                      // @4 block C
    m.bind(join);
    m.return_void();                        // @5 block D
  });
  const Cfg cfg = Cfg::build(*fx.code);
  ASSERT_EQ(cfg.block_count(), 4u);
  const BasicBlock& a = cfg.block(cfg.block_of(0));
  const BasicBlock& b = cfg.block(cfg.block_of(2));
  const BasicBlock& c = cfg.block(cfg.block_of(4));
  const BasicBlock& d = cfg.block(cfg.block_of(5));
  EXPECT_EQ(a.fallthrough, cfg.block_of(2));
  EXPECT_EQ(a.taken, cfg.block_of(4));
  EXPECT_EQ(b.taken, cfg.block_of(5));
  EXPECT_EQ(c.fallthrough, cfg.block_of(5));
  EXPECT_EQ(d.preds.size(), 2u);
}

TEST(Cfg, LoopBackEdge) {
  const Fixture fx = build_method([](MethodBuilder& m) {
    Label top = m.new_label();
    Label out = m.new_label();
    m.bind(top);
    m.const_int(0, 1);            // @0
    m.if_lit(CmpOp::kEq, 0, 0, out);  // @1
    m.goto_(top);                 // @2
    m.bind(out);
    m.return_void();              // @3
  });
  const Cfg cfg = Cfg::build(*fx.code);
  const BasicBlock& loop = cfg.block(cfg.block_of(2));
  EXPECT_EQ(loop.taken, cfg.block_of(0));
  EXPECT_FALSE(cfg.block(cfg.block_of(0)).preds.empty());
}

// Property: blocks partition the instruction sequence exactly once, in
// order, across randomly generated well-formed methods.
class CfgPartition : public ::testing::TestWithParam<int> {};

TEST_P(CfgPartition, BlocksPartitionInstructions) {
  Rng rng{static_cast<std::uint64_t>(GetParam())};
  const Fixture fx = build_method([&rng](MethodBuilder& m) {
    const int body = static_cast<int>(rng.uniform(3, 40));
    // Bind-before-emit labels so every branch target is valid.
    for (int i = 0; i < body; ++i) {
      const double roll = rng.uniform01();
      if (roll < 0.2) {
        Label l = m.new_label();
        m.if_lit(CmpOp::kGe, 0, static_cast<int>(rng.uniform(2, 29)), l);
        m.const_int(1, i);
        m.bind(l);
      } else if (roll < 0.3) {
        m.sget_sdk_int(0);
      } else {
        m.const_int(static_cast<std::uint16_t>(rng.uniform(0, 7)), i);
      }
    }
    m.return_void();
  });
  const Cfg cfg = Cfg::build(*fx.code);
  std::uint32_t expected_first = 0;
  for (std::uint32_t bid = 0; bid < cfg.block_count(); ++bid) {
    const BasicBlock& block = cfg.block(bid);
    EXPECT_EQ(block.first, expected_first);
    EXPECT_GE(block.last, block.first);
    for (std::uint32_t i = block.first; i <= block.last; ++i)
      EXPECT_EQ(cfg.block_of(i), bid);
    expected_first = block.last + 1;
  }
  EXPECT_EQ(expected_first, fx.code->insns.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CfgPartition, ::testing::Range(1, 21));

// --- guard refinement properties ------------------------------------------------

class RefineProperty
    : public ::testing::TestWithParam<std::tuple<CmpOp, int>> {};

TEST_P(RefineProperty, PointwiseAgreesWithEval) {
  const auto [cmp, literal] = GetParam();
  const ApiInterval in{kMinApiLevel, kMaxApiLevel};
  const ApiInterval taken = refine_interval(in, cmp, literal);
  const ApiInterval fallthrough =
      refine_interval(in, negate_cmp(cmp), literal);
  for (int level = kMinApiLevel; level <= kMaxApiLevel; ++level) {
    const bool holds = eval_cmp(cmp, level, literal);
    // Soundness: any level satisfying the constraint is inside the refined
    // interval (refinement may over-approximate for != but never drops).
    if (holds) {
      EXPECT_TRUE(taken.contains(level)) << level;
    }
    if (!holds) {
      EXPECT_TRUE(fallthrough.contains(level)) << level;
    }
    // Every level survives on at least one edge.
    EXPECT_TRUE(taken.contains(level) || fallthrough.contains(level));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpsAndLiterals, RefineProperty,
    ::testing::Combine(::testing::Values(CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                                         CmpOp::kLe, CmpOp::kGt, CmpOp::kGe),
                       ::testing::Values(2, 11, 23, 29, 0, 35)));

TEST(Refine, ExactForOrderedOps) {
  const ApiInterval in{10, 25};
  EXPECT_EQ(refine_interval(in, CmpOp::kGe, 23), ApiInterval(23, 25));
  EXPECT_EQ(refine_interval(in, CmpOp::kLt, 23), ApiInterval(10, 22));
  EXPECT_EQ(refine_interval(in, CmpOp::kGt, 25), ApiInterval::empty_interval());
  EXPECT_EQ(refine_interval(in, CmpOp::kEq, 11), ApiInterval(11, 11));
  // != at an endpoint trims exactly; in the middle it must keep everything.
  EXPECT_EQ(refine_interval(in, CmpOp::kNe, 10), ApiInterval(11, 25));
  EXPECT_EQ(refine_interval(in, CmpOp::kNe, 17), in);
}

// --- guard dataflow on real bytecode ---------------------------------------------

ApiInterval interval_at_invoke(const Fixture& fx, ApiInterval entry,
                               const GuardOptions& options = {}) {
  const Cfg cfg = Cfg::build(*fx.code);
  const GuardResult result =
      analyze_guards(fx.dex, *fx.code, cfg, entry, options);
  for (std::uint32_t i = 0; i < fx.code->insns.size(); ++i)
    if (fx.code->insns[i].op == Opcode::kInvoke) return result.at(cfg, i);
  ADD_FAILURE() << "no invoke found";
  return ApiInterval::empty_interval();
}

Fixture guarded_call(const std::function<void(MethodBuilder&, Label)>& guard) {
  return build_method([&guard](MethodBuilder& m) {
    Label skip = m.new_label();
    guard(m, skip);
    m.invoke_virtual("android/content/Context", "getColorStateList",
                     "android/content/res/ColorStateList", {"I"});
    m.bind(skip);
    m.return_void();
  });
}

TEST(Guards, LiteralGuardRefines) {
  const Fixture fx = guarded_call([](MethodBuilder& m, Label skip) {
    m.sget_sdk_int(0);
    m.if_lit(CmpOp::kLt, 0, 23, skip);
  });
  EXPECT_EQ(interval_at_invoke(fx, ApiInterval(14, 29)), ApiInterval(23, 29));
}

TEST(Guards, RegisterComparisonRefinesWithTracking) {
  const Fixture fx = guarded_call([](MethodBuilder& m, Label skip) {
    m.sget_sdk_int(0);
    m.move(1, 0);
    m.const_int(2, 23);
    m.if_reg(CmpOp::kLt, 1, 2, skip);
  });
  EXPECT_EQ(interval_at_invoke(fx, ApiInterval(14, 29)), ApiInterval(23, 29));
  GuardOptions lexical;
  lexical.track_registers = false;
  EXPECT_EQ(interval_at_invoke(fx, ApiInterval(14, 29), lexical),
            ApiInterval(14, 29));  // Lint-style recognition gives up
}

TEST(Guards, FieldCachedSdkIntRefines) {
  // this.cachedSdk = SDK_INT; if (this.cachedSdk >= 23) ...
  const Fixture fx = guarded_call([](MethodBuilder& m, Label skip) {
    m.sget_sdk_int(0);
    m.iput(0, 5, "t/T", "cachedSdk", "I");
    m.iget(1, 5, "t/T", "cachedSdk", "I");
    m.if_lit(CmpOp::kLt, 1, 23, skip);
  });
  EXPECT_EQ(interval_at_invoke(fx, ApiInterval(14, 29)), ApiInterval(23, 29));
  GuardOptions no_fields;
  no_fields.track_fields = false;
  EXPECT_EQ(interval_at_invoke(fx, ApiInterval(14, 29), no_fields),
            ApiInterval(14, 29));
}

TEST(Guards, FieldOverwrittenWithUnknownLosesFact) {
  const Fixture fx = guarded_call([](MethodBuilder& m, Label skip) {
    m.sget_sdk_int(0);
    m.iput(0, 5, "t/T", "cachedSdk", "I");
    m.invoke_static("com/runtime/GeneratedCheck", "isAtLeast", "Z", {"I"});
    m.move_result(2);
    m.iput(2, 5, "t/T", "cachedSdk", "I");  // clobbered with unknown
    m.iget(1, 5, "t/T", "cachedSdk", "I");
    m.if_lit(CmpOp::kLt, 1, 23, skip);
  });
  EXPECT_EQ(interval_at_invoke(fx, ApiInterval(14, 29)), ApiInterval(14, 29));
}

TEST(Guards, ReversedOperandsNormalize) {
  // if (23 > SDK_INT) skip  ==  execute when SDK_INT >= 23.
  const Fixture fx = guarded_call([](MethodBuilder& m, Label skip) {
    m.const_int(1, 23);
    m.sget_sdk_int(0);
    m.if_reg(CmpOp::kGt, 1, 0, skip);
  });
  EXPECT_EQ(interval_at_invoke(fx, ApiInterval(14, 29)), ApiInterval(23, 29));
}

TEST(Guards, UnknownConditionDoesNotRefine) {
  const Fixture fx = guarded_call([](MethodBuilder& m, Label skip) {
    m.invoke_static("com/runtime/GeneratedCheck", "isAtLeast", "Z", {"I"});
    m.move_result(0);
    m.if_lit(CmpOp::kEq, 0, 0, skip);
  });
  EXPECT_EQ(interval_at_invoke(fx, ApiInterval(14, 29)), ApiInterval(14, 29));
}

TEST(Guards, SgetOfOtherFieldIsNotSdkInt) {
  const Fixture fx = guarded_call([](MethodBuilder& m, Label skip) {
    m.sget(0, "com/app/Config", "level", "I");
    m.if_lit(CmpOp::kLt, 0, 23, skip);
  });
  EXPECT_EQ(interval_at_invoke(fx, ApiInterval(14, 29)), ApiInterval(14, 29));
}

TEST(Guards, JoinTakesHull) {
  // One path checks >= 21, the other >= 26; after the join only the hull
  // [21,29] is sound.
  const Fixture fx = build_method([](MethodBuilder& m) {
    Label other = m.new_label();
    Label ret = m.new_label();
    Label ret2 = m.new_label();
    m.const_int(3, 1);
    m.if_lit(CmpOp::kEq, 3, 0, other);
    m.sget_sdk_int(0);
    m.if_lit(CmpOp::kLt, 0, 21, ret);
    m.goto_(ret2);
    m.bind(other);
    m.sget_sdk_int(0);
    m.if_lit(CmpOp::kLt, 0, 26, ret);
    m.bind(ret2);
    m.invoke_virtual("android/view/View", "setElevation", "V", {"F"});
    m.bind(ret);
    m.return_void();
  });
  EXPECT_EQ(interval_at_invoke(fx, ApiInterval(14, 29)), ApiInterval(21, 29));
}

TEST(Guards, ContradictoryGuardsYieldEmpty) {
  const Fixture fx = build_method([](MethodBuilder& m) {
    Label skip = m.new_label();
    m.sget_sdk_int(0);
    m.if_lit(CmpOp::kLt, 0, 23, skip);   // continue only >= 23
    m.if_lit(CmpOp::kGe, 0, 20, skip);   // continue only < 20: impossible
    m.invoke_virtual("android/view/View", "invalidate");
    m.bind(skip);
    m.return_void();
  });
  EXPECT_TRUE(interval_at_invoke(fx, ApiInterval(14, 29)).empty());
}

TEST(Guards, NarrowEntryContextPropagates) {
  // Interprocedural context: the same body analyzed under a caller's
  // narrowed interval reports the narrowed range at the (unguarded) site.
  const Fixture fx = build_method([](MethodBuilder& m) {
    m.invoke_virtual("android/content/Context", "getColorStateList",
                     "android/content/res/ColorStateList", {"I"});
    m.return_void();
  });
  EXPECT_EQ(interval_at_invoke(fx, ApiInterval(23, 29)), ApiInterval(23, 29));
}

TEST(Guards, DisabledOptionIgnoresGuards) {
  const Fixture fx = guarded_call([](MethodBuilder& m, Label skip) {
    m.sget_sdk_int(0);
    m.if_lit(CmpOp::kLt, 0, 23, skip);
  });
  GuardOptions off;
  off.enabled = false;
  EXPECT_EQ(interval_at_invoke(fx, ApiInterval(14, 29), off),
            ApiInterval(14, 29));
}

TEST(Guards, LoopTerminatesAndStaysSound) {
  const Fixture fx = build_method([](MethodBuilder& m) {
    Label top = m.new_label();
    Label out = m.new_label();
    m.sget_sdk_int(0);
    m.bind(top);
    m.if_lit(CmpOp::kLt, 0, 21, out);
    m.invoke_virtual("android/view/View", "setElevation", "V", {"F"});
    m.goto_(top);
    m.bind(out);
    m.return_void();
  });
  EXPECT_EQ(interval_at_invoke(fx, ApiInterval(14, 29)), ApiInterval(21, 29));
}

}  // namespace
}  // namespace saintdroid
