// The incremental re-vetting layer (core/incr_cache): proof that
// cache-spliced analysis of an app update is *equivalent* to from-scratch
// analysis. The load-bearing property — incremental ≡ scratch — is a
// byte-identity over canonical journal rows, checked across 50 version
// chains × 4 versions (200 generated app versions spanning all five
// mismatch families), at jobs ∈ {1, 2, 8}, including a frontier-explosion
// chain whose final update must trip the loud full-analysis fallback, a
// killed-and-resumed batch, and two suites racing on one shared cache
// directory (the TSan leg of ci/sanitize.sh runs this binary for exactly
// that test). Around the differential sit unit checks of the dirty-set
// computation and the entry codec.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "adf/repository.hpp"
#include "core/incr_cache.hpp"
#include "core/saintdroid.hpp"
#include "support/errors.hpp"
#include "workload/corpus.hpp"
#include "workload/harness.hpp"
#include "workload/journal.hpp"

namespace saintdroid {
namespace {

constexpr int kChains = 48;      ///< localized-edit chains
constexpr int kExplosions = 2;   ///< chains whose final bump edits the hub
constexpr int kVersions = 4;
constexpr int kApps = kChains + kExplosions;

/// Shared framework config: equal configs -> equal fingerprints, so every
/// repository instance in this file shares cache entries.
FrameworkConfig small_config() {
  FrameworkConfig cfg;
  cfg.bulk_classes = 400;
  cfg.bulk_packages = 12;
  return cfg;
}

std::string fresh_cache_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "incr_cache_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// The byte-identity currency (same as the shard and model-cache
/// differentials): canonical journal lines, sorted. canonical_row_bytes
/// clears the incr counters, so a spliced row and a scratch row of the
/// same app must compare equal.
std::string sorted_canonical(std::span<const SuiteAppRow> rows) {
  std::vector<std::string> lines;
  lines.reserve(rows.size());
  for (const auto& row : rows) lines.push_back(canonical_row_bytes(row));
  std::sort(lines.begin(), lines.end());
  std::string bytes;
  for (const auto& line : lines) {
    bytes += line;
    bytes += '\n';
  }
  return bytes;
}

VersionChainConfig local_config() {
  VersionChainConfig cfg;
  cfg.versions = kVersions;
  return cfg;
}

VersionChainConfig explosion_config() {
  VersionChainConfig cfg = local_config();
  cfg.edit_main_activity = true;
  return cfg;
}

/// Explosion chains live at indices far from the localized ones so the
/// two configs can never collide on an app name (the cache key).
constexpr int kExplosionBase = 900;

/// The corpus (every version of every chain), one mined database, and the
/// per-version from-scratch reference rows — built once.
class ChainSuite : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    repo_ = new FrameworkRepository{small_config()};
    versions_ = new std::vector<std::vector<BenchApp>>(kVersions);
    for (int v = 0; v < kVersions; ++v) {
      auto& apps = (*versions_)[static_cast<std::size_t>(v)];
      apps.reserve(kApps);
      for (int c = 0; c < kChains; ++c)
        apps.push_back(generate_chain_version(*repo_, local_config(), c, v));
      for (int e = 0; e < kExplosions; ++e)
        apps.push_back(generate_chain_version(*repo_, explosion_config(),
                                              kExplosionBase + e, v));
    }
    db_ = new std::shared_ptr<const ApiDatabase>{
        std::make_shared<const ApiDatabase>(ApiDatabase::mine(*repo_, 8))};
    scratch_ = new std::vector<std::string>(kVersions);
    for (int v = 0; v < kVersions; ++v)
      (*scratch_)[static_cast<std::size_t>(v)] = sorted_canonical(
          run_suite_parallel(
              [] { return std::make_unique<SaintDroid>(*repo_, *db_); },
              (*versions_)[static_cast<std::size_t>(v)], 4)
              .rows);
  }

  static void TearDownTestSuite() {
    delete scratch_;
    delete db_;
    delete versions_;
    delete repo_;
    scratch_ = nullptr;
    db_ = nullptr;
    versions_ = nullptr;
    repo_ = nullptr;
  }

  /// An analyzer factory whose facades share one incremental cache.
  static AnalyzerFactory incr_factory(
      const std::shared_ptr<const IncrCache>& cache) {
    return [cache] {
      SaintDroidOptions options;
      options.incr_cache = cache;
      return std::make_unique<SaintDroid>(*repo_, *db_, options);
    };
  }

  static const std::vector<BenchApp>& version(int v) {
    return (*versions_)[static_cast<std::size_t>(v)];
  }
  static const std::string& scratch(int v) {
    return (*scratch_)[static_cast<std::size_t>(v)];
  }

  static FrameworkRepository* repo_;
  static std::vector<std::vector<BenchApp>>* versions_;
  static std::shared_ptr<const ApiDatabase>* db_;
  static std::vector<std::string>* scratch_;
};

FrameworkRepository* ChainSuite::repo_ = nullptr;
std::vector<std::vector<BenchApp>>* ChainSuite::versions_ = nullptr;
std::shared_ptr<const ApiDatabase>* ChainSuite::db_ = nullptr;
std::vector<std::string>* ChainSuite::scratch_ = nullptr;

// --- corpus shape ------------------------------------------------------------

TEST_F(ChainSuite, ConsecutiveVersionsDifferOnlyInEditedClasses) {
  const VersionChainConfig cfg = local_config();
  for (int v = 1; v < kVersions; ++v) {
    for (const int c : {0, 7, kChains - 1}) {
      SCOPED_TRACE("chain " + std::to_string(c) + " v" + std::to_string(v));
      const auto& prev = version(v - 1)[static_cast<std::size_t>(c)].apk;
      const auto& next = version(v)[static_cast<std::size_t>(c)].apk;
      ASSERT_EQ(prev.name, next.name);  // one cache key per chain

      const ApkFingerprints before = fingerprint_apk(prev);
      const ApkFingerprints after = fingerprint_apk(next);
      std::set<std::string> differing;
      for (const auto& [name, fp] : after) {
        const auto it = before.find(name);
        if (it == before.end() || !(it->second == fp)) differing.insert(name);
      }
      for (const auto& [name, fp] : before)
        if (after.find(name) == after.end()) differing.insert(name);

      // A bump touches its edited slots plus the dead-churn swap (old
      // class out, new class in) — and nothing else. In particular the
      // hub (MainActivity) must be byte-stable, or every bump would dirty
      // the whole app.
      EXPECT_LE(differing.size(),
                static_cast<std::size_t>(cfg.edits_per_version +
                                         2 * cfg.dead_churn));
      EXPECT_GE(differing.size(), static_cast<std::size_t>(2 * cfg.dead_churn));
      for (const auto& name : differing)
        EXPECT_NE(name.find("/chain/"), std::string::npos) << name;
    }
  }
}

TEST_F(ChainSuite, ChainsSpanAllFiveFamilies) {
  // The round-robin slot layout plus consecutive edit selection must
  // exercise every detector family somewhere in the corpus ledger.
  std::set<MismatchKind> kinds;
  for (const auto& app : version(0))
    for (const auto& issue : app.truth.issues) kinds.insert(issue.kind);
  EXPECT_TRUE(kinds.count(MismatchKind::kApiInvocation));
  EXPECT_TRUE(kinds.count(MismatchKind::kApiCallback));
  EXPECT_TRUE(kinds.count(MismatchKind::kPermissionRequest));
  EXPECT_TRUE(kinds.count(MismatchKind::kSemanticChange));
  EXPECT_TRUE(kinds.count(MismatchKind::kSdkDeclaration));
}

// --- dirty-set unit checks ---------------------------------------------------

TEST(IncrDirtySet, IdenticalFingerprintsAreFullyClean) {
  const FrameworkRepository repo{small_config()};
  const BenchApp app = generate_chain_version(repo, local_config(), 0, 0);
  const ApkFingerprints fps = fingerprint_apk(app.apk);

  IncrEntry entry;
  entry.app = app.apk.name;
  for (const auto& [name, fp] : fps) entry.classes[name].fingerprint = fp;

  const DirtyDelta delta = compute_dirty(entry, fps);
  EXPECT_TRUE(delta.dirty.empty());
  EXPECT_EQ(delta.total_classes, fps.size());
  EXPECT_DOUBLE_EQ(delta.fraction(), 0.0);
}

TEST(IncrDirtySet, LocalizedEditStaysUnderFallbackThreshold) {
  const FrameworkRepository repo{small_config()};
  const BenchApp v0 = generate_chain_version(repo, local_config(), 3, 0);
  const BenchApp v1 = generate_chain_version(repo, local_config(), 3, 1);

  IncrEntry entry;
  entry.app = v0.apk.name;
  for (const auto& [name, fp] : fingerprint_apk(v0.apk))
    entry.classes[name].fingerprint = fp;

  const DirtyDelta delta = compute_dirty(entry, fingerprint_apk(v1.apk));
  EXPECT_FALSE(delta.dirty.empty());
  for (const auto& name : delta.dirty)
    EXPECT_NE(name.find("/chain/"), std::string::npos) << name;
  EXPECT_LE(delta.fraction(), SaintDroidOptions{}.max_dirty_fraction);
}

TEST(IncrDirtySet, HubEditExplodesPastFallbackThreshold) {
  // The explosion chain's final bump edits MainActivity; onCreate
  // references every slot, so the forward closure engulfs the app and the
  // fraction must exceed the engine's default budget — the case the loud
  // fallback exists for.
  const FrameworkRepository repo{small_config()};
  const VersionChainConfig cfg = explosion_config();
  const BenchApp prev = generate_chain_version(repo, cfg, 0, kVersions - 2);
  const BenchApp last = generate_chain_version(repo, cfg, 0, kVersions - 1);

  IncrEntry entry;
  entry.app = prev.apk.name;
  for (const auto& [name, fp] : fingerprint_apk(prev.apk))
    entry.classes[name].fingerprint = fp;

  const DirtyDelta delta = compute_dirty(entry, fingerprint_apk(last.apk));
  EXPECT_GT(delta.fraction(), SaintDroidOptions{}.max_dirty_fraction);
}

TEST(IncrEntryCodec, RoundTripIsByteStable) {
  const FrameworkRepository repo{small_config()};
  const BenchApp app = generate_chain_version(repo, local_config(), 5, 2);

  IncrEntry entry;
  entry.app = app.apk.name;
  entry.manifest_fp = manifest_fingerprint(app.apk.manifest);
  entry.options_fp = aum_options_fingerprint(AumOptions{});
  for (const auto& [name, fp] : fingerprint_apk(app.apk))
    entry.classes[name].fingerprint = fp;

  const auto bytes = serialize_incr_entry(entry);
  const IncrEntry parsed = parse_incr_entry(bytes);
  EXPECT_EQ(parsed.app, entry.app);
  EXPECT_EQ(parsed.manifest_fp, entry.manifest_fp);
  EXPECT_EQ(parsed.options_fp, entry.options_fp);
  EXPECT_EQ(parsed.classes.size(), entry.classes.size());
  EXPECT_EQ(serialize_incr_entry(parsed), bytes);
}

// --- the differential --------------------------------------------------------

TEST_F(ChainSuite, IncrementalEqualsScratchAcrossVersionsAndJobs) {
  for (const int jobs : {1, 2, 8}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    const auto cache = std::make_shared<const IncrCache>(
        fresh_cache_dir("equiv_j" + std::to_string(jobs)));
    for (int v = 0; v < kVersions; ++v) {
      SCOPED_TRACE("version " + std::to_string(v));
      const SuiteResult suite =
          run_suite_parallel(incr_factory(cache), version(v), jobs);

      // The proof: spliced rows are byte-identical to from-scratch rows.
      EXPECT_EQ(sorted_canonical(suite.rows), scratch(v));

      // The counters tell the story the bytes cannot: v0 is all cold
      // misses; every localized bump is served from the cache; the
      // explosion chains' final bump takes the loud fallback.
      EXPECT_EQ(suite.incremental.attempted,
                static_cast<std::uint64_t>(kApps));
      if (v == 0) {
        EXPECT_EQ(suite.incremental.hits, 0u);
        EXPECT_EQ(suite.incremental.fallbacks,
                  static_cast<std::uint64_t>(kApps));
      } else if (v < kVersions - 1) {
        EXPECT_EQ(suite.incremental.hits, static_cast<std::uint64_t>(kApps));
        EXPECT_EQ(suite.incremental.fallbacks, 0u);
        EXPECT_GT(suite.incremental.dirty_classes, 0u);
      } else {
        EXPECT_EQ(suite.incremental.hits,
                  static_cast<std::uint64_t>(kChains));
        EXPECT_EQ(suite.incremental.fallbacks,
                  static_cast<std::uint64_t>(kExplosions));
      }
    }
  }
}

TEST_F(ChainSuite, KilledBatchResumesToScratchRows) {
  // Warm the cache with the initial publish, then vet the first update in
  // a batch that "dies" partway (the harness's graceful stop, which a real
  // kill degenerates to thanks to the journal's append-and-seal
  // discipline). The resumed run must merge the dead run's journaled rows
  // verbatim, finish the rest through the same shared cache, and land on
  // the from-scratch bytes.
  const auto cache =
      std::make_shared<const IncrCache>(fresh_cache_dir("resume"));
  run_suite_parallel(incr_factory(cache), version(0), 4);

  const std::string journal =
      ::testing::TempDir() + "incr_resume_journal.jsonl";
  std::filesystem::remove(journal);

  SuiteRunOptions killed;
  killed.jobs = 2;
  killed.journal_path = journal;
  killed.incr_cache_dir = cache->dir();
  std::atomic<int> polls{0};  // the stop poll races across workers
  killed.stop = [&polls] { return ++polls > kApps / 3; };
  const SuiteResult partial =
      run_suite_parallel(incr_factory(cache), version(1), killed);
  ASSERT_LT(partial.rows.size(), static_cast<std::size_t>(kApps));
  ASSERT_GT(partial.skipped_rows, 0u);

  SuiteRunOptions resumed;
  resumed.jobs = 4;
  resumed.journal_path = journal;
  resumed.resume = true;
  resumed.incr_cache_dir = cache->dir();
  const SuiteResult finished =
      run_suite_parallel(incr_factory(cache), version(1), resumed);
  ASSERT_EQ(finished.rows.size(), static_cast<std::size_t>(kApps));
  EXPECT_EQ(finished.resumed_rows, partial.rows.size());
  EXPECT_EQ(sorted_canonical(finished.rows), scratch(1));

  std::filesystem::remove(journal);
}

TEST_F(ChainSuite, ConcurrentSuitesShareOneCacheDirectory) {
  // Two whole batch runs racing on one cache directory — the shard
  // topology, and the TSan leg's subject. Stores are rename-atomic and
  // loads swallow every defect, so both runs must produce scratch bytes
  // whatever the interleaving; hit counts may differ (either run may get
  // to an entry first), correctness may not.
  const auto cache =
      std::make_shared<const IncrCache>(fresh_cache_dir("race"));
  run_suite_parallel(incr_factory(cache), version(0), 4);

  std::string left_bytes;
  std::string right_bytes;
  std::thread left([&] {
    left_bytes = sorted_canonical(
        run_suite_parallel(incr_factory(cache), version(1), 4).rows);
  });
  std::thread right([&] {
    right_bytes = sorted_canonical(
        run_suite_parallel(incr_factory(cache), version(2), 4).rows);
  });
  left.join();
  right.join();
  EXPECT_EQ(left_bytes, scratch(1));
  EXPECT_EQ(right_bytes, scratch(2));
}

}  // namespace
}  // namespace saintdroid
