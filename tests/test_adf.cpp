// Tests for the framework substrate: curated lifecycle facts, per-level
// image emission, synthetic bulk determinism and the permission catalogue.
#include <gtest/gtest.h>

#include "adf/image.hpp"
#include "adf/permissions.hpp"
#include "adf/repository.hpp"
#include "adf/spec.hpp"
#include "adf/synthetic.hpp"

namespace saintdroid {
namespace {

// --- lifecycle semantics ------------------------------------------------------

TEST(Lifecycle, ExistsAt) {
  const Lifecycle never_removed{11, 0};
  EXPECT_FALSE(never_removed.exists_at(10));
  EXPECT_TRUE(never_removed.exists_at(11));
  EXPECT_TRUE(never_removed.exists_at(kMaxApiLevel));
  const Lifecycle removed{8, 23};
  EXPECT_TRUE(removed.exists_at(8));
  EXPECT_TRUE(removed.exists_at(22));
  EXPECT_FALSE(removed.exists_at(23));
  EXPECT_EQ(removed.existence(), ApiInterval(8, 22));
}

// --- curated facts the paper's examples rely on -------------------------------

TEST(CuratedSpec, PaperFacts) {
  const FrameworkSpec spec = curated_framework_spec();
  const auto intro = [&](const char* cls, const char* method) {
    const MethodSpec* m = spec.find_method(cls, method);
    return m ? m->life.introduced : -1;
  };
  EXPECT_EQ(intro("android/content/Context", "getColorStateList"), 23);
  EXPECT_EQ(intro("android/app/Activity", "getFragmentManager"), 11);
  EXPECT_EQ(intro("android/view/View", "drawableHotspotChanged"), 21);
  EXPECT_EQ(intro("android/app/Activity", "onRequestPermissionsResult"), 23);
  EXPECT_EQ(intro("android/app/Activity", "requestPermissions"), 23);
  EXPECT_EQ(intro("android/app/NotificationChannel", "<init>"), 26);
  EXPECT_EQ(intro("android/view/View", "setBackground"), 16);
  EXPECT_EQ(intro("android/app/Service", "onTrimMemory"), 14);
  EXPECT_EQ(intro("android/widget/TextView", "setTextAppearance"), 23);
  EXPECT_EQ(intro("android/view/Window", "setStatusBarColor"), 21);
  EXPECT_EQ(intro("android/app/NotificationManager",
                  "createNotificationChannel"), 26);
  EXPECT_EQ(intro("android/net/ConnectivityManager", "getActiveNetwork"),
            23);
  EXPECT_EQ(intro("android/content/SharedPreferences$Editor", "apply"), 9);
  EXPECT_EQ(intro("java/lang/Class", "forName"), 2);
  // Fragment has both onAttach overloads with distinct lifecycles.
  const ClassSpec* fragment = spec.find_class("android/app/Fragment");
  ASSERT_NE(fragment, nullptr);
  int attach_11 = 0;
  int attach_23 = 0;
  for (const auto& m : fragment->methods) {
    if (m.name != "onAttach") continue;
    if (m.life.introduced == 11) ++attach_11;
    if (m.life.introduced == 23) ++attach_23;
  }
  EXPECT_EQ(attach_11, 1);
  EXPECT_EQ(attach_23, 1);
  // AndroidHttpClient was removed at 23 (forward incompatibility material).
  const ClassSpec* http = spec.find_class("android/net/http/AndroidHttpClient");
  ASSERT_NE(http, nullptr);
  EXPECT_EQ(http->life.removed, 23);
}

TEST(CuratedSpec, PermissionFacts) {
  const FrameworkSpec spec = curated_framework_spec();
  EXPECT_EQ(spec.find_method("android/hardware/Camera", "open")->permission,
            "android.permission.CAMERA");
  EXPECT_EQ(spec.find_method("android/content/ContentResolver", "insert")
                ->permission,
            "android.permission.WRITE_EXTERNAL_STORAGE");
  EXPECT_EQ(spec.find_method("android/bluetooth/le/BluetoothLeScanner",
                             "startScan")->permission,
            "android.permission.ACCESS_FINE_LOCATION");
  // insertImage has no direct permission but calls into insert.
  const MethodSpec* insert_image =
      spec.find_method("android/provider/MediaStore$Images$Media",
                       "insertImage");
  ASSERT_NE(insert_image, nullptr);
  EXPECT_TRUE(insert_image->permission.empty());
  ASSERT_FALSE(insert_image->calls.empty());
  EXPECT_EQ(insert_image->calls[0].name, "insert");
}

TEST(FrameworkNamespace, Classification) {
  EXPECT_TRUE(is_framework_class_name("android/app/Activity"));
  EXPECT_TRUE(is_framework_class_name("java/lang/Object"));
  EXPECT_TRUE(is_framework_class_name("android/synth/p3/C42"));
  // The support library ships inside APKs: app code.
  EXPECT_FALSE(is_framework_class_name("android/support/v4/app/ActivityCompat"));
  EXPECT_FALSE(is_framework_class_name("com/example/Main"));
}

// --- image emission -------------------------------------------------------------

TEST(Image, RespectsLifecycles) {
  const FrameworkSpec spec = curated_framework_spec();
  const DexFile at22 = emit_framework_image(spec, 22);
  const DexFile at23 = emit_framework_image(spec, 23);

  const auto has_method = [](const DexFile& dex, const char* cls,
                             const char* name) {
    const ClassDef* def = dex.find_class(cls);
    if (!def) return false;
    for (const auto& m : def->methods)
      if (dex.string_at(m.name) == name) return true;
    return false;
  };

  EXPECT_FALSE(has_method(at22, "android/content/Context",
                          "getColorStateList"));
  EXPECT_TRUE(has_method(at23, "android/content/Context",
                         "getColorStateList"));
  // AndroidHttpClient: present at 22, gone at 23.
  EXPECT_NE(at22.find_class("android/net/http/AndroidHttpClient"), nullptr);
  EXPECT_EQ(at23.find_class("android/net/http/AndroidHttpClient"), nullptr);
  // NotificationChannel only exists from 26.
  EXPECT_EQ(at23.find_class("android/app/NotificationChannel"), nullptr);
  const DexFile at26 = emit_framework_image(spec, 26);
  EXPECT_NE(at26.find_class("android/app/NotificationChannel"), nullptr);
}

TEST(Image, PermissionEnforcementIsRealBytecode) {
  const FrameworkSpec spec = curated_framework_spec();
  const DexFile image = emit_framework_image(spec, 23);
  const ClassDef* camera = image.find_class("android/hardware/Camera");
  ASSERT_NE(camera, nullptr);
  bool enforced = false;
  for (const auto& m : camera->methods) {
    if (image.string_at(m.name) != "open" || !m.code) continue;
    bool saw_const = false;
    for (const auto& insn : m.code->insns) {
      if (insn.op == Opcode::kConstString &&
          image.string_at(insn.index) == "android.permission.CAMERA")
        saw_const = true;
      if (insn.op == Opcode::kInvoke &&
          image.method_id_at(insn.index).name == kPermissionEnforcerMethod)
        enforced = saw_const;
    }
  }
  EXPECT_TRUE(enforced);
}

TEST(Image, CallbackDispatchersEmitted) {
  const FrameworkSpec spec = curated_framework_spec();
  const DexFile image = emit_framework_image(spec, 23);
  const ClassDef* view = image.find_class("android/view/View");
  ASSERT_NE(view, nullptr);
  bool dispatches_hotspot = false;
  for (const auto& m : view->methods) {
    if (image.string_at(m.name) != kCallbackDispatcherName || !m.code)
      continue;
    for (const auto& insn : m.code->insns)
      if (insn.op == Opcode::kInvoke &&
          image.method_id_at(insn.index).name == "drawableHotspotChanged")
        dispatches_hotspot = true;
  }
  EXPECT_TRUE(dispatches_hotspot);
}

// Property: every level's image is a valid container and round-trips.
class ImagePerLevel : public ::testing::TestWithParam<int> {};

TEST_P(ImagePerLevel, SerializesAndReparses) {
  FrameworkConfig cfg;
  cfg.bulk_classes = 60;  // keep the sweep fast
  const FrameworkSpec spec = build_framework_spec(cfg);
  const DexFile image = emit_framework_image(spec, GetParam());
  const auto bytes = image.serialize();
  const DexFile back = DexFile::parse(bytes);
  EXPECT_EQ(back.serialize(), bytes);
  EXPECT_GT(back.classes().size(), 20u);
}

INSTANTIATE_TEST_SUITE_P(Levels, ImagePerLevel,
                         ::testing::Range(kMinApiLevel, kMaxApiLevel + 1));

TEST(Image, MonotoneGrowthOverall) {
  FrameworkConfig cfg;
  cfg.bulk_classes = 200;
  const FrameworkSpec spec = build_framework_spec(cfg);
  // The framework mostly grows level over level (a few removals allowed).
  const auto count_at = [&](int level) {
    return emit_framework_image(spec, level).classes().size();
  };
  EXPECT_LT(count_at(2), count_at(15));
  EXPECT_LT(count_at(15), count_at(29));
}

// --- synthetic bulk ---------------------------------------------------------------

TEST(Synthetic, DeterministicForSeed) {
  FrameworkConfig cfg;
  cfg.bulk_classes = 100;
  const DexFile a = emit_framework_image(build_framework_spec(cfg), 25);
  const DexFile b = emit_framework_image(build_framework_spec(cfg), 25);
  EXPECT_EQ(a.serialize(), b.serialize());
  cfg.seed = 999;
  const DexFile c = emit_framework_image(build_framework_spec(cfg), 25);
  EXPECT_NE(a.serialize(), c.serialize());
}

TEST(Synthetic, CallbacksAreVoid) {
  FrameworkConfig cfg;
  cfg.bulk_classes = 150;
  const FrameworkSpec spec = build_framework_spec(cfg);
  for (const auto& cls : spec.classes)
    for (const auto& m : cls.methods)
      if (m.callback) {
        EXPECT_EQ(m.return_type, "V") << cls.name << "." << m.name;
      }
}

TEST(Synthetic, MethodLifecyclesNestInClassLifecycles) {
  FrameworkConfig cfg;
  cfg.bulk_classes = 150;
  const FrameworkSpec spec = build_framework_spec(cfg);
  for (const auto& cls : spec.classes)
    for (const auto& m : cls.methods)
      EXPECT_GE(m.life.introduced, cls.life.introduced)
          << cls.name << "." << m.name;
}

// --- repository -------------------------------------------------------------------

TEST(Repository, CachesImages) {
  FrameworkConfig cfg;
  cfg.bulk_classes = 50;
  const FrameworkRepository repo{cfg};
  const DexFile& a = repo.image(20);
  const DexFile& b = repo.image(20);
  EXPECT_EQ(&a, &b);  // same cached object
  EXPECT_EQ(FrameworkRepository::clamp_level(1), kMinApiLevel);
  EXPECT_EQ(FrameworkRepository::clamp_level(99), kMaxApiLevel);
  EXPECT_EQ(FrameworkRepository::clamp_level(19), 19);
}

TEST(Repository, ClassIndexCoversImage) {
  FrameworkConfig cfg;
  cfg.bulk_classes = 50;
  const FrameworkRepository repo{cfg};
  const DexFile& image = repo.image(24);
  const auto& index = repo.class_index(24);
  EXPECT_EQ(index.size(), image.classes().size());
  EXPECT_TRUE(index.contains("android/app/Activity"));
}

// --- permissions -------------------------------------------------------------------

TEST(Permissions, CatalogueHas26Dangerous) {
  EXPECT_EQ(dangerous_permissions().size(), 26u);
  EXPECT_TRUE(is_dangerous_permission("android.permission.CAMERA"));
  EXPECT_TRUE(
      is_dangerous_permission("android.permission.WRITE_EXTERNAL_STORAGE"));
  EXPECT_FALSE(is_dangerous_permission("android.permission.INTERNET"));
  EXPECT_FALSE(is_dangerous_permission(""));
}

}  // namespace
}  // namespace saintdroid
