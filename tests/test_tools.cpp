// End-to-end coverage of the command-line tools, driven through the shell
// the way a user runs them: apkgen writes packages to disk, saintdroid
// analyzes/disassembles/mines, appgraph dumps graphs. CTest runs these
// with the tests/ binary dir as CWD; the tool binaries live in ../tools.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

namespace saintdroid {
namespace {

namespace fs = std::filesystem;

const char* tool_dir() { return "../tools"; }

bool tools_present() {
  return fs::exists(fs::path(tool_dir()) / "saintdroid") &&
         fs::exists(fs::path(tool_dir()) / "apkgen") &&
         fs::exists(fs::path(tool_dir()) / "appgraph");
}

/// Runs a command, captures stdout, returns {exit code, output}.
std::pair<int, std::string> run(const std::string& command) {
  const std::string log = "tool_test_output.txt";
  const int rc = std::system((command + " > " + log + " 2>&1").c_str());
  std::ifstream in{log};
  std::string output{std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>()};
  return {rc, output};
}

class ToolsEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!tools_present()) GTEST_SKIP() << "tool binaries not built";
    fs::create_directories("tool_test_tmp");
  }
};

TEST_F(ToolsEndToEnd, DemoGenerateAnalyzeSuggest) {
  auto [gen_rc, gen_out] =
      run(std::string(tool_dir()) + "/apkgen demo tool_test_tmp/demo.apk");
  ASSERT_EQ(gen_rc, 0) << gen_out;
  ASSERT_TRUE(fs::exists("tool_test_tmp/demo.apk"));

  auto [rc, out] = run(std::string(tool_dir()) +
                       "/saintdroid analyze tool_test_tmp/demo.apk --suggest");
  EXPECT_EQ(WEXITSTATUS(rc), 1);  // mismatches found -> exit 1
  EXPECT_NE(out.find("[API]"), std::string::npos);
  EXPECT_NE(out.find("[PRM]"), std::string::npos);
  EXPECT_NE(out.find("[add-sdk-guard]"), std::string::npos);
}

TEST_F(ToolsEndToEnd, JsonOutputIsJson) {
  run(std::string(tool_dir()) + "/apkgen demo tool_test_tmp/demo.apk");
  auto [rc, out] = run(std::string(tool_dir()) +
                       "/saintdroid analyze tool_test_tmp/demo.apk --json");
  (void)rc;
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front(), '{');
  EXPECT_NE(out.find("\"mismatches\":["), std::string::npos);
}

TEST_F(ToolsEndToEnd, MineAndReuseDatabase) {
  auto [mine_rc, mine_out] =
      run(std::string(tool_dir()) + "/saintdroid mine tool_test_tmp/api.db");
  ASSERT_EQ(mine_rc, 0) << mine_out;
  EXPECT_NE(mine_out.find("mined"), std::string::npos);
  ASSERT_TRUE(fs::exists("tool_test_tmp/api.db"));

  run(std::string(tool_dir()) + "/apkgen demo tool_test_tmp/demo.apk");
  auto [rc, out] =
      run(std::string(tool_dir()) +
          "/saintdroid analyze tool_test_tmp/demo.apk --db tool_test_tmp/api.db");
  EXPECT_EQ(WEXITSTATUS(rc), 1);
  EXPECT_NE(out.find("mismatches: 4"), std::string::npos);
}

TEST_F(ToolsEndToEnd, DisasmShowsBytecode) {
  run(std::string(tool_dir()) + "/apkgen demo tool_test_tmp/demo.apk");
  auto [rc, out] = run(std::string(tool_dir()) +
                       "/saintdroid disasm tool_test_tmp/demo.apk");
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("invoke-virtual"), std::string::npos);
  EXPECT_NE(out.find("class com/apkgen/demo/MainActivity"),
            std::string::npos);
}

TEST_F(ToolsEndToEnd, AppGraphStatsAndDot) {
  run(std::string(tool_dir()) + "/apkgen demo tool_test_tmp/demo.apk");
  auto [stats_rc, stats] = run(std::string(tool_dir()) +
                               "/appgraph tool_test_tmp/demo.apk --stats");
  EXPECT_EQ(stats_rc, 0);
  EXPECT_NE(stats.find("entry points"), std::string::npos);
  auto [dot_rc, dot] =
      run(std::string(tool_dir()) + "/appgraph tool_test_tmp/demo.apk");
  EXPECT_EQ(dot_rc, 0);
  EXPECT_EQ(dot.rfind("digraph", 0), 0u);
}

TEST_F(ToolsEndToEnd, RejectsCorruptPackage) {
  std::ofstream bad{"tool_test_tmp/bad.apk", std::ios::binary};
  bad << "not an apk";
  bad.close();
  auto [rc, out] = run(std::string(tool_dir()) +
                       "/saintdroid analyze tool_test_tmp/bad.apk");
  EXPECT_EQ(WEXITSTATUS(rc), 2);
  EXPECT_NE(out.find("parse error"), std::string::npos);
}

TEST_F(ToolsEndToEnd, UsageOnBadArguments) {
  auto [rc, out] = run(std::string(tool_dir()) + "/saintdroid");
  EXPECT_NE(WEXITSTATUS(rc), 0);
  EXPECT_NE(out.find("usage:"), std::string::npos);
}

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

TEST_F(ToolsEndToEnd, ShardedBatchesMergeIntoOneCanonicalJournal) {
  auto [gen_rc, gen_out] =
      run(std::string(tool_dir()) + "/apkgen corpus tool_test_tmp/corpus 9");
  ASSERT_EQ(gen_rc, 0) << gen_out;

  // The app-file list, in one fixed order: the order defines the corpus
  // fingerprint, so every shard invocation must see the same list.
  std::string files;
  for (int i = 0; i < 9; ++i) {
    const std::string path =
        "tool_test_tmp/corpus/fdroid-app-" + std::to_string(i) + ".apk";
    ASSERT_TRUE(fs::exists(path)) << path;
    files += " " + path;
  }

  // Two shard processes, each journaling its interleaved slice. Corpus
  // apps have mismatches, so batch exits 1 — not a failure here.
  for (int s = 0; s < 2; ++s) {
    auto [rc, out] = run(std::string(tool_dir()) + "/saintdroid batch" +
                         files + " --jobs 2 --shard " + std::to_string(s) +
                         "/2 --journal tool_test_tmp/shard" +
                         std::to_string(s) + ".jsonl");
    EXPECT_LE(WEXITSTATUS(rc), 1) << out;
    EXPECT_NE(out.find("shard " + std::to_string(s) + "/2"),
              std::string::npos);
  }

  auto [rc, out] = run(std::string(tool_dir()) +
                       "/saintdroid merge-journals tool_test_tmp/merged.jsonl"
                       " tool_test_tmp/shard0.jsonl"
                       " tool_test_tmp/shard1.jsonl");
  EXPECT_EQ(WEXITSTATUS(rc), 0) << out;
  EXPECT_NE(out.find("9 apps, 0 duplicate"), std::string::npos);
  EXPECT_NE(out.find("0 conflicts"), std::string::npos);

  // Merging in the opposite input order produces a byte-identical file.
  auto [rev_rc, rev_out] =
      run(std::string(tool_dir()) +
          "/saintdroid merge-journals tool_test_tmp/merged_rev.jsonl"
          " tool_test_tmp/shard1.jsonl"
          " tool_test_tmp/shard0.jsonl");
  EXPECT_EQ(WEXITSTATUS(rev_rc), 0) << rev_out;
  EXPECT_EQ(slurp("tool_test_tmp/merged.jsonl"),
            slurp("tool_test_tmp/merged_rev.jsonl"));

  // A journal from a different shard layout (an unsharded run of the same
  // apps) is refused loudly, not silently interleaved.
  auto [full_rc, full_out] =
      run(std::string(tool_dir()) + "/saintdroid batch" + files +
          " --jobs 2 --journal tool_test_tmp/full.jsonl");
  EXPECT_LE(WEXITSTATUS(full_rc), 1) << full_out;
  auto [bad_rc, bad_out] =
      run(std::string(tool_dir()) +
          "/saintdroid merge-journals tool_test_tmp/merged_bad.jsonl"
          " tool_test_tmp/shard0.jsonl tool_test_tmp/full.jsonl");
  EXPECT_EQ(WEXITSTATUS(bad_rc), 2) << bad_out;
  EXPECT_NE(bad_out.find("merge-journals"), std::string::npos);
}

}  // namespace
}  // namespace saintdroid
