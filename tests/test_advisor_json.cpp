// Tests for the repair advisor, the JSON report writer, and the
// multi-version analysis entry point.
#include <gtest/gtest.h>

#include "adf/repository.hpp"
#include "core/advisor.hpp"
#include "core/json.hpp"
#include "core/saintdroid.hpp"
#include "workload/app_builder.hpp"

namespace saintdroid {
namespace {

namespace cat = catalog;

const FrameworkRepository& repo() { return FrameworkRepository::standard(); }

AnalysisResult analyze_seeded(const char* name, int min_sdk, int target_sdk,
                              const std::function<void(AppBuilder&)>& seed,
                              Apk* out_apk = nullptr) {
  AppBuilder b{name, std::string{"com.adv."} + name, repo().spec()};
  b.sdk(min_sdk, target_sdk);
  seed(b);
  auto built = b.build();
  SaintDroid tool{repo()};
  if (out_apk) *out_apk = built.apk;
  return tool.analyze(built.apk);
}

// --- advisor ----------------------------------------------------------------

TEST(Advisor, BackwardInvocationGetsGuardAndMinSdkOptions) {
  Apk apk;
  const auto result = analyze_seeded(
      "guard", 14, 27,
      [](AppBuilder& b) { b.api_call(cat::get_color_state_list()); }, &apk);
  const auto repairs = suggest_repairs(apk.manifest, result.mismatches);
  ASSERT_EQ(repairs.size(), 2u);
  EXPECT_EQ(repairs[0].kind, RepairKind::kAddSdkGuard);
  EXPECT_EQ(repairs[0].level, 23);
  EXPECT_NE(repairs[0].description.find("SDK_INT >= 23"), std::string::npos);
  EXPECT_EQ(repairs[1].kind, RepairKind::kRaiseMinSdk);
  EXPECT_EQ(repairs[1].level, 23);
}

TEST(Advisor, ForwardInvocationSuggestsMigration) {
  Apk apk;
  const auto result = analyze_seeded(
      "fwd", 14, 22,
      [](AppBuilder& b) { b.api_call(cat::http_client_execute()); }, &apk);
  const auto repairs = suggest_repairs(apk.manifest, result.mismatches);
  ASSERT_EQ(repairs.size(), 1u);
  EXPECT_EQ(repairs[0].kind, RepairKind::kReplaceRemovedApi);
  EXPECT_NE(repairs[0].description.find("migrate off"), std::string::npos);
}

TEST(Advisor, CallbackSuggestions) {
  Apk apk;
  const auto result = analyze_seeded(
      "apc", 14, 27,
      [](AppBuilder& b) { b.callback_override(cat::on_attach_context()); },
      &apk);
  const auto repairs = suggest_repairs(apk.manifest, result.mismatches);
  ASSERT_EQ(repairs.size(), 2u);
  EXPECT_EQ(repairs[0].kind, RepairKind::kRemoveDeadOverride);
  EXPECT_EQ(repairs[0].level, 23);
}

TEST(Advisor, PermissionRequestSuggestsProtocol) {
  Apk apk;
  const auto result = analyze_seeded(
      "prm", 19, 26,
      [](AppBuilder& b) { b.permission_use(cat::camera_open()); }, &apk);
  const auto repairs = suggest_repairs(apk.manifest, result.mismatches);
  ASSERT_EQ(repairs.size(), 1u);
  EXPECT_EQ(repairs[0].kind, RepairKind::kImplementRuntimePermissions);
  EXPECT_NE(repairs[0].description.find("android.permission.CAMERA"),
            std::string::npos);
}

TEST(Advisor, RevocationSuggestsTargetBump) {
  Apk apk;
  const auto result = analyze_seeded(
      "rev", 16, 22,
      [](AppBuilder& b) { b.permission_use(cat::resolver_insert()); }, &apk);
  const auto repairs = suggest_repairs(apk.manifest, result.mismatches);
  ASSERT_EQ(repairs.size(), 2u);
  EXPECT_EQ(repairs[0].kind, RepairKind::kRaiseTargetSdk);
  EXPECT_EQ(repairs[1].kind, RepairKind::kImplementRuntimePermissions);
}

TEST(Advisor, RenderGroupsByMismatch) {
  Apk apk;
  const auto result = analyze_seeded(
      "render", 14, 27,
      [](AppBuilder& b) { b.api_call(cat::get_color_state_list()); }, &apk);
  const auto repairs = suggest_repairs(apk.manifest, result.mismatches);
  const std::string text = render_repairs(repairs);
  // One header line for the mismatch, two indented suggestion lines.
  EXPECT_NE(text.find("[API]"), std::string::npos);
  EXPECT_NE(text.find("[add-sdk-guard]"), std::string::npos);
  EXPECT_NE(text.find("[raise-min-sdk]"), std::string::npos);
}

TEST(Advisor, NoMismatchesNoSuggestions) {
  const Manifest manifest;
  EXPECT_TRUE(suggest_repairs(manifest, {}).empty());
  EXPECT_TRUE(render_repairs({}).empty());
}

// --- json -------------------------------------------------------------------

TEST(Json, Escaping) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string{"\x01"}), "\\u0001");
}

TEST(Json, MismatchObject) {
  Mismatch m;
  m.kind = MismatchKind::kApiInvocation;
  m.location = {"com/a/A", "f", "()V"};
  m.subject = {"android/b/B", "g", "(I)V"};
  m.problem_levels = ApiInterval{14, 22};
  m.note = "introduced at API level 23";
  const std::string json = to_json(m);
  EXPECT_NE(json.find("\"kind\":\"api-invocation\""), std::string::npos);
  EXPECT_NE(json.find("\"class\":\"android/b/B\""), std::string::npos);
  EXPECT_NE(json.find("\"problem_levels\":{\"min\":14,\"max\":22}"),
            std::string::npos);
  EXPECT_EQ(json.find("\"permission\""), std::string::npos);  // absent
}

TEST(Json, ResultObject) {
  Apk apk;
  const auto result = analyze_seeded(
      "json", 14, 27,
      [](AppBuilder& b) { b.api_call(cat::get_color_state_list()); }, &apk);
  const std::string json = to_json(result, "json-app");
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"app\":\"json-app\""), std::string::npos);
  EXPECT_NE(json.find("\"completed\":true"), std::string::npos);
  EXPECT_NE(json.find("\"mismatches\":[{"), std::string::npos);
  EXPECT_NE(json.find("\"loaded_classes\""), std::string::npos);
}

TEST(Json, FailureObject) {
  AnalysisResult failed;
  failed.completed = false;
  failed.failure_reason = "analysis \"exceeded\" budget";
  const std::string json = to_json(failed, "f");
  EXPECT_NE(json.find("\"completed\":false"), std::string::npos);
  EXPECT_NE(json.find("\\\"exceeded\\\""), std::string::npos);
}

TEST(Json, SuggestionArray) {
  Apk apk;
  const auto result = analyze_seeded(
      "sjson", 19, 26,
      [](AppBuilder& b) { b.permission_use(cat::camera_open()); }, &apk);
  const auto repairs = suggest_repairs(apk.manifest, result.mismatches);
  const std::string json = to_json(repairs);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"repair\":\"implement-runtime-permissions\""),
            std::string::npos);
}

// --- analyze_versions ----------------------------------------------------------

TEST(MultiVersion, MergesAndDeduplicates) {
  AppBuilder b{"mv", "com.adv.mv", repo().spec()};
  b.sdk(14, 27);
  b.api_call(cat::get_color_state_list());
  auto built = b.build();
  SaintDroid tool{repo()};

  const int levels[] = {16, 23, 28};
  const auto merged = tool.analyze_versions(built.apk, levels);
  const auto single = tool.analyze(built.apk);
  // The same issue exists at every analysis level; merged output carries
  // it once with the same identity.
  ASSERT_EQ(merged.mismatches.size(), single.mismatches.size());
  EXPECT_EQ(match_key(merged.mismatches[0]), match_key(single.mismatches[0]));
  // Usage accumulates across the three runs.
  EXPECT_GT(merged.usage.seconds, single.usage.seconds);
}

TEST(MultiVersion, EmptyLevelSetYieldsEmptyResult) {
  AppBuilder b{"mv0", "com.adv.mv0", repo().spec()};
  b.sdk(14, 27);
  b.api_call(cat::get_color_state_list());
  auto built = b.build();
  SaintDroid tool{repo()};
  const auto merged = tool.analyze_versions(built.apk, {});
  EXPECT_TRUE(merged.mismatches.empty());
}

}  // namespace
}  // namespace saintdroid
