// Differential test harness for multi-process sharded corpus runs.
//
// The load-bearing property is *shard/merge/resume equivalence*: over a
// 200-app corpus, {one process} ≡ {N shards, journals merged} ≡ {a shard
// killed mid-append, resumed, then merged} — byte-identically, in the
// canonical currency (rows sorted by app name, journal_line serialization,
// wall-clock seconds zeroed), across jobs ∈ {1, 2, 8} and shard counts
// ∈ {1, 3, 7}, with injected faults landing in the same rows either way.
// Around that sit the merge edge cases (empty inputs, silent dedup,
// divergent-row conflicts, header mismatch rejection) and a byte-offset
// sweep of the JournalWriter append-mode sealing contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "adf/repository.hpp"
#include "core/saintdroid.hpp"
#include "support/errors.hpp"
#include "support/faults.hpp"
#include "workload/corpus.hpp"
#include "workload/harness.hpp"
#include "workload/journal.hpp"

namespace saintdroid {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

/// The byte-identity currency: one canonical line per row (seconds
/// zeroed), sorted lexicographically by line — which sorts by app name,
/// since every line starts with `{"app":"<name>"`.
std::string sorted_canonical(std::span<const SuiteAppRow> rows) {
  std::vector<std::string> lines;
  lines.reserve(rows.size());
  for (const auto& row : rows) lines.push_back(canonical_row_bytes(row));
  std::sort(lines.begin(), lines.end());
  std::string bytes;
  for (const auto& line : lines) {
    bytes += line;
    bytes += '\n';
  }
  return bytes;
}

SuiteAppRow named_row(const std::string& app, std::size_t mismatches = 0,
                      double seconds = 0.0) {
  SuiteAppRow row;
  row.app = app;
  row.mismatch_count = mismatches;
  row.usage.seconds = seconds;
  return row;
}

std::vector<BenchApp> named_apps(std::initializer_list<const char*> names) {
  std::vector<BenchApp> apps;
  for (const char* name : names) {
    BenchApp app;
    app.apk.name = name;
    apps.push_back(std::move(app));
  }
  return apps;
}

// --- shard_slice ---------------------------------------------------------------

TEST(ShardSlice, InterleavedSlicesPartitionTheInput) {
  const auto apps =
      named_apps({"a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8", "a9"});
  for (const int count : {1, 3, 7}) {
    SCOPED_TRACE("shards=" + std::to_string(count));
    std::vector<std::string> combined;
    for (int s = 0; s < count; ++s) {
      const auto slice = shard_slice(apps, s, count);
      for (std::size_t k = 0; k < slice.size(); ++k) {
        // Slice s holds exactly the input positions s, s+count, ...
        EXPECT_EQ(slice[k].apk.name,
                  apps[static_cast<std::size_t>(s) + k * count].apk.name);
        combined.push_back(slice[k].apk.name);
      }
    }
    std::sort(combined.begin(), combined.end());
    ASSERT_EQ(combined.size(), apps.size());
    EXPECT_EQ(std::unique(combined.begin(), combined.end()), combined.end());
  }
}

TEST(ShardSlice, SingleShardIsIdentity) {
  const auto apps = named_apps({"x", "y", "z"});
  const auto slice = shard_slice(apps, 0, 1);
  ASSERT_EQ(slice.size(), 3u);
  EXPECT_EQ(slice[2].apk.name, "z");
}

TEST(ShardSlice, MoreShardsThanAppsYieldsEmptyTailSlices) {
  const auto apps = named_apps({"x", "y"});
  EXPECT_EQ(shard_slice(apps, 0, 7).size(), 1u);
  EXPECT_EQ(shard_slice(apps, 1, 7).size(), 1u);
  EXPECT_TRUE(shard_slice(apps, 6, 7).empty());
}

TEST(ShardSlice, InvalidSpecThrows) {
  const auto apps = named_apps({"x"});
  EXPECT_THROW(shard_slice(apps, -1, 3), ConfigError);
  EXPECT_THROW(shard_slice(apps, 3, 3), ConfigError);
  EXPECT_THROW(shard_slice(apps, 0, 0), ConfigError);
}

// --- corpus fingerprint --------------------------------------------------------

TEST(CorpusFingerprint, StableAndSensitiveToContentAndOrder) {
  const auto apps = named_apps({"a", "b", "c"});
  const std::string fp = corpus_fingerprint(apps);
  EXPECT_EQ(fp.size(), 16u);
  EXPECT_EQ(fp, corpus_fingerprint(apps));  // deterministic
  EXPECT_NE(fp, corpus_fingerprint(named_apps({"a", "b"})));
  EXPECT_NE(fp, corpus_fingerprint(named_apps({"b", "a", "c"})));
  // Names must not concatenate ambiguously across boundaries.
  EXPECT_NE(corpus_fingerprint(named_apps({"ab", "c"})),
            corpus_fingerprint(named_apps({"a", "bc"})));
}

// --- journal header ------------------------------------------------------------

TEST(JournalHeaderRow, RoundTripsThroughItsLine) {
  JournalHeader header;
  header.corpus = "deadbeef01234567";
  header.shard_index = 2;
  header.shard_count = 7;
  header.tool = "saintdroid";
  const std::string line = journal_header_line(header);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const auto parsed = parse_journal_header(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->schema, kJournalSchemaVersion);
  EXPECT_EQ(parsed->corpus, header.corpus);
  EXPECT_EQ(parsed->shard_index, 2);
  EXPECT_EQ(parsed->shard_count, 7);
  EXPECT_EQ(parsed->tool, "saintdroid");
  EXPECT_FALSE(parsed->merged());
}

TEST(JournalHeaderRow, HeaderAndRowParsersRejectEachOther) {
  const std::string header_line = journal_header_line(JournalHeader{});
  const std::string row_line = journal_line(named_row("some-app"));
  EXPECT_FALSE(parse_journal_line(header_line).has_value());
  EXPECT_FALSE(parse_journal_header(row_line).has_value());
  EXPECT_FALSE(parse_journal_header("not json").has_value());
  EXPECT_FALSE(parse_journal_header("{\"journal\":\"x\"}").has_value());
}

TEST(JournalHeaderRow, CompatibilityIgnoresShardIndexAndTool) {
  JournalHeader a;
  a.corpus = "c";
  a.shard_count = 3;
  JournalHeader b = a;
  b.shard_index = 2;
  b.tool = "other";
  EXPECT_TRUE(headers_compatible(a, b));
  b = a;
  b.schema = a.schema + 1;
  EXPECT_FALSE(headers_compatible(a, b));
  b = a;
  b.corpus = "d";
  EXPECT_FALSE(headers_compatible(a, b));
  b = a;
  b.shard_count = 4;
  EXPECT_FALSE(headers_compatible(a, b));
}

TEST(JournalHeaderRow, LoadJournalFileSplitsHeaderFromRows) {
  const std::string path = temp_path("journal_header_load.jsonl");
  JournalHeader header;
  header.corpus = "abc";
  header.shard_index = 1;
  header.shard_count = 3;
  {
    std::ofstream out{path, std::ios::trunc};
    out << journal_header_line(header) << "\n";
    out << journal_line(named_row("app-a")) << "\n";
    out << journal_line(named_row("app-b")) << "\n";
  }
  const JournalFile file = load_journal_file(path);
  ASSERT_TRUE(file.header.has_value());
  EXPECT_EQ(file.header->corpus, "abc");
  ASSERT_EQ(file.rows.size(), 2u);
  EXPECT_EQ(file.rows[0].app, "app-a");
  // load_journal skips the header: rows only, for legacy callers.
  EXPECT_EQ(load_journal(path).size(), 2u);
  std::remove(path.c_str());
}

// --- JournalWriter header handling ---------------------------------------------

TEST(JournalWriterHeader, FreshRunWritesHeaderFirst) {
  const std::string path = temp_path("journal_fresh_header.jsonl");
  JournalHeader header;
  header.corpus = "fp";
  header.shard_index = 1;
  header.shard_count = 2;
  {
    JournalWriter writer{path, /*append=*/false, header};
    writer.append(named_row("after-header"));
  }
  const JournalFile file = load_journal_file(path);
  ASSERT_TRUE(file.header.has_value());
  EXPECT_EQ(file.header->corpus, "fp");
  EXPECT_EQ(file.header->shard_index, 1);
  ASSERT_EQ(file.rows.size(), 1u);
  std::remove(path.c_str());
}

TEST(JournalWriterHeader, ResumeIntoWrongShardFailsLoudly) {
  const std::string path = temp_path("journal_wrong_shard.jsonl");
  JournalHeader header;
  header.corpus = "fp";
  header.shard_index = 0;
  header.shard_count = 2;
  { JournalWriter writer{path, /*append=*/false, header}; }

  JournalHeader other = header;
  other.shard_index = 1;
  EXPECT_THROW((JournalWriter{path, /*append=*/true, other}), ConfigError);
  other = header;
  other.corpus = "different";
  EXPECT_THROW((JournalWriter{path, /*append=*/true, other}), ConfigError);
  // The matching shard resumes fine.
  {
    JournalWriter writer{path, /*append=*/true, header};
    writer.append(named_row("resumed"));
  }
  EXPECT_EQ(load_journal(path).size(), 1u);
  std::remove(path.c_str());
}

TEST(JournalWriterHeader, LegacyHeaderlessJournalIsAccepted) {
  const std::string path = temp_path("journal_legacy.jsonl");
  {
    std::ofstream out{path, std::ios::trunc};
    out << journal_line(named_row("old-row")) << "\n";
  }
  JournalHeader header;
  header.corpus = "fp";
  {
    JournalWriter writer{path, /*append=*/true, header};
    writer.append(named_row("new-row"));
  }
  const JournalFile file = load_journal_file(path);
  EXPECT_FALSE(file.header.has_value());  // no header injected mid-file
  EXPECT_EQ(file.rows.size(), 2u);
  std::remove(path.c_str());
}

// --- append-mode sealing, at every byte offset ---------------------------------

TEST(JournalWriterSeal, KillAtEveryByteOffsetNeverLosesASealedRow) {
  const std::string path = temp_path("journal_seal_sweep.jsonl");
  const SuiteAppRow sealed = named_row("sealed-row", 3);
  const SuiteAppRow torn = named_row("torn-row", 5);
  const SuiteAppRow appended = named_row("appended-row", 7);
  const std::string torn_line = journal_line(torn);

  for (std::size_t cut = 0; cut <= torn_line.size(); ++cut) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    {
      std::ofstream out{path, std::ios::binary | std::ios::trunc};
      out << journal_line(sealed) << "\n";
      out << torn_line.substr(0, cut);  // killed mid-append, no newline
    }
    {
      JournalWriter writer{path, /*append=*/true};
      writer.append(appended);
    }
    const auto rows = load_journal(path);
    // The prior sealed row survives every kill offset, and the post-resume
    // append lands intact. The torn row itself parses only when the kill
    // hit exactly the newline boundary (the line was complete but
    // unterminated; sealing finishes it).
    const std::size_t expected = cut == torn_line.size() ? 3u : 2u;
    ASSERT_EQ(rows.size(), expected);
    EXPECT_EQ(rows.front().app, "sealed-row");
    EXPECT_EQ(rows.front().mismatch_count, 3u);
    EXPECT_EQ(rows.back().app, "appended-row");
    EXPECT_EQ(rows.back().mismatch_count, 7u);
    if (expected == 3u) EXPECT_EQ(rows[1].app, "torn-row");
  }
  std::remove(path.c_str());
}

// --- merge-journals edge cases -------------------------------------------------

TEST(MergeJournals, NoInputsThrows) {
  EXPECT_THROW(merge_journals({}), ConfigError);
}

TEST(MergeJournals, UnreadableInputThrows) {
  EXPECT_THROW(merge_journals({temp_path("journal_never_existed.jsonl")}),
               ConfigError);
}

TEST(MergeJournals, EmptyInputsMergeToEmpty) {
  const std::string a = temp_path("journal_empty_a.jsonl");
  const std::string b = temp_path("journal_empty_b.jsonl");
  { std::ofstream{a, std::ios::trunc}; }
  { std::ofstream{b, std::ios::trunc}; }
  const JournalMerge merge = merge_journals({a, b});
  EXPECT_TRUE(merge.clean());
  EXPECT_TRUE(merge.rows.empty());
  EXPECT_EQ(merge.duplicates, 0u);
  EXPECT_TRUE(merge.header.merged());
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(MergeJournals, IdenticalDuplicateRowsDedupSilentlyLastWriterWins) {
  const std::string a = temp_path("journal_dup_a.jsonl");
  const std::string b = temp_path("journal_dup_b.jsonl");
  JournalHeader header;
  header.corpus = "fp";
  header.shard_count = 2;
  // Same canonical payload, different wall-clock: a re-run, not a bug.
  write_journal(a, header, std::vector<SuiteAppRow>{
                               named_row("app-x", 4, 0.111),
                               named_row("app-y", 1, 0.2)});
  header.shard_index = 1;
  write_journal(b, header, std::vector<SuiteAppRow>{
                               named_row("app-x", 4, 0.999)});
  const JournalMerge merge = merge_journals({a, b});
  EXPECT_TRUE(merge.clean());
  EXPECT_EQ(merge.duplicates, 1u);
  ASSERT_EQ(merge.rows.size(), 2u);
  EXPECT_EQ(merge.rows[0].app, "app-x");  // sorted by app name
  EXPECT_EQ(merge.rows[1].app, "app-y");
  EXPECT_DOUBLE_EQ(merge.rows[0].usage.seconds, 0.999);  // last writer
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(MergeJournals, DivergentDuplicateRowsAreConflictsWithBothReported) {
  const std::string a = temp_path("journal_conflict_a.jsonl");
  const std::string b = temp_path("journal_conflict_b.jsonl");
  write_journal(a, JournalHeader{},
                std::vector<SuiteAppRow>{named_row("app-x", 4)});
  write_journal(b, JournalHeader{},
                std::vector<SuiteAppRow>{named_row("app-x", 9)});
  const JournalMerge merge = merge_journals({a, b});
  EXPECT_FALSE(merge.clean());
  EXPECT_EQ(merge.duplicates, 0u);
  ASSERT_EQ(merge.conflicts.size(), 1u);
  EXPECT_EQ(merge.conflicts[0].app, "app-x");
  EXPECT_EQ(merge.conflicts[0].kept.mismatch_count, 9u);
  EXPECT_EQ(merge.conflicts[0].discarded.mismatch_count, 4u);
  ASSERT_EQ(merge.rows.size(), 1u);
  EXPECT_EQ(merge.rows[0].mismatch_count, 9u);  // last writer wins
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(MergeJournals, HeaderMismatchesAreRejected) {
  const std::string a = temp_path("journal_hdr_a.jsonl");
  const std::string b = temp_path("journal_hdr_b.jsonl");
  JournalHeader header;
  header.corpus = "corpus-one";
  header.shard_count = 2;
  write_journal(a, header, {});

  JournalHeader wrong = header;
  wrong.corpus = "corpus-two";
  write_journal(b, wrong, {});
  EXPECT_THROW(merge_journals({a, b}), ConfigError);

  wrong = header;
  wrong.schema = header.schema + 1;
  write_journal(b, wrong, {});
  EXPECT_THROW(merge_journals({a, b}), ConfigError);

  wrong = header;
  wrong.shard_count = 5;
  write_journal(b, wrong, {});
  EXPECT_THROW(merge_journals({a, b}), ConfigError);

  // Another shard of the same run is, of course, mergeable.
  wrong = header;
  wrong.shard_index = 1;
  write_journal(b, wrong, {});
  EXPECT_NO_THROW(merge_journals({a, b}));
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(MergeJournals, OutputOrderIsIndependentOfInputOrder) {
  const std::string a = temp_path("journal_order_a.jsonl");
  const std::string b = temp_path("journal_order_b.jsonl");
  write_journal(a, JournalHeader{},
                std::vector<SuiteAppRow>{named_row("zeta", 1),
                                         named_row("alpha", 2)});
  write_journal(b, JournalHeader{},
                std::vector<SuiteAppRow>{named_row("mid", 3)});
  const JournalMerge forward = merge_journals({a, b});
  const JournalMerge backward = merge_journals({b, a});
  EXPECT_EQ(sorted_canonical(forward.rows), sorted_canonical(backward.rows));
  ASSERT_EQ(forward.rows.size(), 3u);
  EXPECT_EQ(forward.rows[0].app, "alpha");
  EXPECT_EQ(forward.rows[1].app, "mid");
  EXPECT_EQ(forward.rows[2].app, "zeta");
  std::remove(a.c_str());
  std::remove(b.c_str());
}

// --- the differential property -------------------------------------------------

constexpr int kCorpusSize = 200;

/// 200 small corpus apps, a shared pre-mined database, and the
/// single-process reference bytes — built once for every differential test.
class ShardSuite : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto& repo = FrameworkRepository::standard();
    CorpusConfig config;
    config.app_count = kCorpusSize;
    config.size_base = 120.0;   // keep the fixture fast: small apps,
    config.size_spread = 1.5;   // same generative structure
    config.api_issue_mean = 6.0;
    corpus_ = new RealWorldCorpus{repo, config};
    apps_ = new std::vector<BenchApp>{
        corpus_->generate_range(0, kCorpusSize, 8)};
    SaintDroid miner{repo};
    db_ = new std::shared_ptr<const ApiDatabase>{miner.shared_database()};
    fingerprint_ = new std::string{corpus_fingerprint(*apps_)};
    reference_ = new std::string{sorted_canonical(
        run_suite_parallel(factory(), *apps_, 4).rows)};
  }

  static void TearDownTestSuite() {
    delete reference_;
    delete fingerprint_;
    delete db_;
    delete apps_;
    delete corpus_;
    reference_ = nullptr;
    fingerprint_ = nullptr;
    db_ = nullptr;
    apps_ = nullptr;
    corpus_ = nullptr;
  }

  static AnalyzerFactory factory() {
    return [] {
      return std::make_unique<SaintDroid>(FrameworkRepository::standard(),
                                          *db_);
    };
  }

  /// Runs shard `index` of `count` over its journal file, exactly as one
  /// process of a multi-host run would, and returns the journal path.
  static std::string run_shard(const std::string& tag, int index, int count,
                               int jobs) {
    const std::string path = temp_path("shard_" + tag + "_" +
                                       std::to_string(index) + "of" +
                                       std::to_string(count) + ".jsonl");
    SuiteRunOptions options;
    options.jobs = jobs;
    options.journal_path = path;
    options.corpus_id = *fingerprint_;
    options.shard_index = index;
    options.shard_count = count;
    (void)run_suite_parallel(factory(), shard_slice(*apps_, index, count),
                             options);
    return path;
  }

  static void remove_all(const std::vector<std::string>& paths) {
    for (const auto& path : paths) std::remove(path.c_str());
  }

  static RealWorldCorpus* corpus_;
  static std::vector<BenchApp>* apps_;
  static std::shared_ptr<const ApiDatabase>* db_;
  static std::string* fingerprint_;
  static std::string* reference_;
};

RealWorldCorpus* ShardSuite::corpus_ = nullptr;
std::vector<BenchApp>* ShardSuite::apps_ = nullptr;
std::shared_ptr<const ApiDatabase>* ShardSuite::db_ = nullptr;
std::string* ShardSuite::fingerprint_ = nullptr;
std::string* ShardSuite::reference_ = nullptr;

TEST_F(ShardSuite, MergedShardsEqualSingleProcessAcrossJobsAndShardCounts) {
  for (const int jobs : {1, 2, 8}) {
    for (const int shards : {1, 3, 7}) {
      SCOPED_TRACE("jobs=" + std::to_string(jobs) +
                   " shards=" + std::to_string(shards));
      std::vector<std::string> files;
      for (int s = 0; s < shards; ++s)
        files.push_back(run_shard("j" + std::to_string(jobs), s, shards,
                                  jobs));
      const JournalMerge merged = merge_journals(files);
      EXPECT_TRUE(merged.clean());
      EXPECT_EQ(merged.duplicates, 0u);  // slices are disjoint
      EXPECT_EQ(merged.rows.size(), static_cast<std::size_t>(kCorpusSize));
      EXPECT_EQ(sorted_canonical(merged.rows), *reference_);
      EXPECT_TRUE(merged.header.merged());
      EXPECT_EQ(merged.header.corpus, *fingerprint_);
      remove_all(files);
    }
  }
}

TEST_F(ShardSuite, KillMidShardResumeThenMergeEqualsSingleProcess) {
  const int shards = 3;
  const int jobs = 2;
  // Shards 0 and 2 complete normally.
  std::vector<std::string> files;
  files.push_back(run_shard("resume", 0, shards, jobs));

  // Shard 1 dies mid-append: it journals only a prefix of its slice and
  // its trailing row is torn at half length.
  const std::vector<BenchApp> slice = shard_slice(*apps_, 1, shards);
  const std::string victim = temp_path("shard_resume_1of3.jsonl");
  const std::size_t first_leg = slice.size() / 2;
  {
    const std::vector<BenchApp> head{
        slice.begin(), slice.begin() + static_cast<std::ptrdiff_t>(first_leg)};
    SuiteRunOptions options;
    options.jobs = jobs;
    options.journal_path = victim;
    options.corpus_id = *fingerprint_;
    options.shard_index = 1;
    options.shard_count = shards;
    (void)run_suite_parallel(factory(), head, options);
  }
  {
    std::vector<std::string> lines;
    std::ifstream in{victim};
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    in.close();
    ASSERT_EQ(lines.size(), first_leg + 1);  // header + journaled rows
    std::ofstream out{victim, std::ios::trunc};
    for (std::size_t i = 0; i + 1 < lines.size(); ++i) out << lines[i] << "\n";
    out << lines.back().substr(0, lines.back().size() / 2);  // torn row
  }

  // The shard is re-launched with --resume semantics over its full slice.
  {
    SuiteRunOptions options;
    options.jobs = jobs;
    options.journal_path = victim;
    options.resume = true;
    options.corpus_id = *fingerprint_;
    options.shard_index = 1;
    options.shard_count = shards;
    const SuiteResult resumed =
        run_suite_parallel(factory(), slice, options);
    // Every journaled row but the torn one is merged back, not re-analyzed.
    EXPECT_EQ(resumed.resumed_rows, first_leg - 1);
    EXPECT_EQ(resumed.rows.size(), slice.size());
  }
  files.push_back(victim);
  files.push_back(run_shard("resume", 2, shards, jobs));

  // After resume the shard journal covers its slice exactly once.
  EXPECT_EQ(load_journal(victim).size(), slice.size());

  const JournalMerge merged = merge_journals(files);
  EXPECT_TRUE(merged.clean());
  EXPECT_EQ(merged.rows.size(), static_cast<std::size_t>(kCorpusSize));
  EXPECT_EQ(sorted_canonical(merged.rows), *reference_);
  remove_all(files);
}

TEST_F(ShardSuite, InjectedFaultsLandInTheSameRowsShardedOrNot) {
  const std::vector<int> victims{3, 41, 99, 150, 199};
  FaultPlan plan;
  for (const int v : victims) {
    plan.faults.push_back({"clvm.materialize",
                           (*apps_)[static_cast<std::size_t>(v)].apk.name,
                           FaultSpec::Kind::kInjected});
  }
  const FaultScope scope{plan};

  // Single-process faulted reference.
  const SuiteResult faulted = run_suite_parallel(factory(), *apps_, 2);
  EXPECT_EQ(faulted.failures, static_cast<int>(victims.size()));
  const std::string faulted_reference = sorted_canonical(faulted.rows);
  EXPECT_NE(faulted_reference, *reference_);  // the faults did land

  // Sharded runs under the same plan: the same victim apps must fail with
  // the same structured rows, because shard/merge moves apps between
  // processes but never changes what each app's analysis sees.
  std::vector<std::string> files;
  for (int s = 0; s < 3; ++s) files.push_back(run_shard("faulted", s, 3, 2));
  const JournalMerge merged = merge_journals(files);
  EXPECT_TRUE(merged.clean());
  EXPECT_EQ(sorted_canonical(merged.rows), faulted_reference);

  std::size_t failed = 0;
  for (const auto& row : merged.rows) {
    if (row.failure.has_value()) {
      ++failed;
      EXPECT_EQ(row.failure->kind, FailureKind::kInjected);
    }
  }
  EXPECT_EQ(failed, victims.size());
  remove_all(files);
}

}  // namespace
}  // namespace saintdroid
