// Unit coverage for the report/result types and small enums that other
// suites only exercise incidentally.
#include <gtest/gtest.h>

#include "core/advisor.hpp"
#include "core/report.hpp"
#include "dex/manifest.hpp"
#include "support/meter.hpp"

namespace saintdroid {
namespace {

TEST(Report, KindNamesAndAbbreviations) {
  EXPECT_STREQ(mismatch_kind_name(MismatchKind::kApiInvocation),
               "api-invocation");
  EXPECT_STREQ(mismatch_kind_name(MismatchKind::kApiCallback),
               "api-callback");
  EXPECT_STREQ(mismatch_kind_name(MismatchKind::kPermissionRequest),
               "permission-request");
  EXPECT_STREQ(mismatch_kind_name(MismatchKind::kPermissionRevocation),
               "permission-revocation");
  EXPECT_STREQ(mismatch_kind_abbr(MismatchKind::kApiInvocation), "API");
  EXPECT_STREQ(mismatch_kind_abbr(MismatchKind::kApiCallback), "APC");
  // Both permission forms share the paper's PRM column.
  EXPECT_STREQ(mismatch_kind_abbr(MismatchKind::kPermissionRequest), "PRM");
  EXPECT_STREQ(mismatch_kind_abbr(MismatchKind::kPermissionRevocation),
               "PRM");
}

TEST(Report, KeysDistinguishKindLocationSubject) {
  Mismatch a;
  a.kind = MismatchKind::kApiInvocation;
  a.location = {"c/C", "f", "()V"};
  a.subject = {"android/x/Y", "g", "()V"};
  Mismatch b = a;
  EXPECT_EQ(a.key(), b.key());
  b.location.name = "h";
  EXPECT_NE(a.key(), b.key());
  b = a;
  b.kind = MismatchKind::kApiCallback;
  EXPECT_NE(a.key(), b.key());
  // Permission keys ignore the subject and carry the permission.
  Mismatch p1 = a;
  p1.kind = MismatchKind::kPermissionRequest;
  p1.permission = "android.permission.CAMERA";
  Mismatch p2 = p1;
  p2.subject.name = "different";
  EXPECT_EQ(p1.key(), p2.key());
  p2.permission = "android.permission.SEND_SMS";
  EXPECT_NE(p1.key(), p2.key());
}

TEST(Report, CountsAndText) {
  AnalysisResult result;
  Mismatch api;
  api.kind = MismatchKind::kApiInvocation;
  api.location = {"c/C", "f", "()V"};
  api.subject = {"android/x/Y", "g", "()V"};
  api.problem_levels = ApiInterval{14, 22};
  Mismatch req = api;
  req.kind = MismatchKind::kPermissionRequest;
  req.permission = "android.permission.CAMERA";
  Mismatch rev = req;
  rev.kind = MismatchKind::kPermissionRevocation;
  result.mismatches = {api, req, rev};
  EXPECT_EQ(result.count(MismatchKind::kApiInvocation), 1u);
  EXPECT_EQ(result.permission_count(), 2u);
  const std::string text = result.to_text("app");
  EXPECT_NE(text.find("API 1, APC 0, PRM 2"), std::string::npos);
}

TEST(Report, FailureText) {
  AnalysisResult result;
  result.completed = false;
  result.failure_reason = "budget exceeded";
  const std::string text = result.to_text("big-app");
  EXPECT_NE(text.find("analysis failed: budget exceeded"),
            std::string::npos);
}

TEST(Meter, PeakAndCurrentTracking) {
  MemoryMeter meter;
  meter.allocate(100);
  meter.allocate(50);
  EXPECT_EQ(meter.current_bytes(), 150u);
  EXPECT_EQ(meter.peak_bytes(), 150u);
  meter.release(120);
  EXPECT_EQ(meter.current_bytes(), 30u);
  EXPECT_EQ(meter.peak_bytes(), 150u);  // peak persists
  meter.allocate(40);
  EXPECT_EQ(meter.peak_bytes(), 150u);
  EXPECT_EQ(meter.total_bytes(), 190u);
  meter.release(1000);  // underflow clamps to zero
  EXPECT_EQ(meter.current_bytes(), 0u);
  meter.reset();
  EXPECT_EQ(meter.peak_bytes(), 0u);
}

TEST(Meter, StopwatchMonotone) {
  const Stopwatch watch;
  const double a = watch.seconds();
  const double b = watch.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(Advisor, RepairKindNames) {
  EXPECT_STREQ(repair_kind_name(RepairKind::kAddSdkGuard), "add-sdk-guard");
  EXPECT_STREQ(repair_kind_name(RepairKind::kRaiseMinSdk), "raise-min-sdk");
  EXPECT_STREQ(repair_kind_name(RepairKind::kReplaceRemovedApi),
               "replace-removed-api");
  EXPECT_STREQ(repair_kind_name(RepairKind::kImplementRuntimePermissions),
               "implement-runtime-permissions");
  EXPECT_STREQ(repair_kind_name(RepairKind::kRaiseTargetSdk),
               "raise-target-sdk");
  EXPECT_STREQ(repair_kind_name(RepairKind::kRemoveDeadOverride),
               "gate-dead-override");
}

TEST(Manifest, ComponentKindNames) {
  EXPECT_STREQ(component_kind_name(ComponentKind::kActivity), "activity");
  EXPECT_STREQ(component_kind_name(ComponentKind::kService), "service");
  EXPECT_STREQ(component_kind_name(ComponentKind::kReceiver), "receiver");
  EXPECT_STREQ(component_kind_name(ComponentKind::kProvider), "provider");
}

TEST(Mismatch, ToStringPerKind) {
  Mismatch m;
  m.location = {"c/C", "f", "()V"};
  m.subject = {"android/x/Y", "g", "()V"};
  m.problem_levels = ApiInterval{14, 22};
  m.kind = MismatchKind::kApiInvocation;
  EXPECT_NE(m.to_string().find("invokes"), std::string::npos);
  m.kind = MismatchKind::kApiCallback;
  EXPECT_NE(m.to_string().find("overrides"), std::string::npos);
  m.kind = MismatchKind::kPermissionRequest;
  m.permission = "android.permission.CAMERA";
  EXPECT_NE(m.to_string().find("without the runtime request"),
            std::string::npos);
  m.kind = MismatchKind::kPermissionRevocation;
  EXPECT_NE(m.to_string().find("revocable"), std::string::npos);
}

}  // namespace
}  // namespace saintdroid
