// Robustness suite: fault injection, per-app isolation, analysis budgets,
// and the crash-safe suite journal.
//
// The load-bearing property is *fault isolation under determinism*: with K
// planned faults armed over a corpus run, exactly the K victim apps produce
// structured failure rows, every other app's row is identical to a clean
// run's, and the whole statement holds at any worker count.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "adf/repository.hpp"
#include "core/outcome.hpp"
#include "core/saintdroid.hpp"
#include "support/budget.hpp"
#include "support/errors.hpp"
#include "support/faults.hpp"
#include "workload/corpus.hpp"
#include "workload/harness.hpp"
#include "workload/journal.hpp"

namespace saintdroid {
namespace {

// --- fault plan matching -------------------------------------------------------

TEST(FaultPlan, MatchesPointAndContext) {
  FaultPlan plan;
  plan.faults.push_back({"clvm.materialize", "app-7", FaultSpec::Kind::kInjected});
  EXPECT_NE(plan.match("clvm.materialize", "app-7"), nullptr);
  EXPECT_EQ(plan.match("clvm.materialize", "app-8"), nullptr);
  EXPECT_EQ(plan.match("dex.parse", "app-7"), nullptr);
}

TEST(FaultPlan, EmptyContextMatchesAnyContext) {
  FaultPlan plan;
  plan.faults.push_back({"dex.parse", "", FaultSpec::Kind::kParse});
  EXPECT_NE(plan.match("dex.parse", "whatever"), nullptr);
  EXPECT_NE(plan.match("dex.parse", ""), nullptr);
}

TEST(FaultPoints, DisarmedHooksAreSilent) {
  EXPECT_FALSE(faults::armed());
  SD_FAULT_POINT("clvm.materialize");  // must be a no-op
}

TEST(FaultPoints, ArmedHookThrowsPlannedKind) {
  FaultPlan plan;
  plan.faults.push_back({"p.injected", "", FaultSpec::Kind::kInjected});
  plan.faults.push_back({"p.parse", "", FaultSpec::Kind::kParse});
  plan.faults.push_back({"p.resolve", "", FaultSpec::Kind::kResolve});
  const FaultScope scope{plan};
  EXPECT_THROW(SD_FAULT_POINT("p.injected"), InjectedFault);
  EXPECT_THROW(SD_FAULT_POINT("p.parse"), ParseError);
  EXPECT_THROW(SD_FAULT_POINT("p.resolve"), ResolveError);
  SD_FAULT_POINT("p.unplanned");  // armed but unmatched: silent
}

TEST(FaultContextScope, NestsAndRestores) {
  EXPECT_EQ(faults::context(), "");
  {
    const FaultContextScope outer{"outer-app"};
    EXPECT_EQ(faults::context(), "outer-app");
    {
      const FaultContextScope inner{"inner-app"};
      EXPECT_EQ(faults::context(), "inner-app");
    }
    EXPECT_EQ(faults::context(), "outer-app");
  }
  EXPECT_EQ(faults::context(), "");
}

// --- failure taxonomy ----------------------------------------------------------

TEST(FailureKind, NamesRoundTrip) {
  for (const auto kind :
       {FailureKind::kParse, FailureKind::kResolve, FailureKind::kConfig,
        FailureKind::kInjected, FailureKind::kInternal}) {
    EXPECT_EQ(failure_kind_from_name(failure_kind_name(kind)), kind);
  }
  EXPECT_EQ(failure_kind_from_name("no-such-kind"), FailureKind::kInternal);
}

TEST(FailureKind, ClassifiesExceptionTypes) {
  EXPECT_EQ(classify_failure(ParseError{"x"}), FailureKind::kParse);
  EXPECT_EQ(classify_failure(ResolveError{"x"}), FailureKind::kResolve);
  EXPECT_EQ(classify_failure(ConfigError{"x"}), FailureKind::kConfig);
  EXPECT_EQ(classify_failure(InjectedFault{"p", "c"}), FailureKind::kInjected);
  EXPECT_EQ(classify_failure(std::runtime_error{"x"}), FailureKind::kInternal);
}

/// Analyzer stub that throws a caller-chosen exception.
class ThrowingAnalyzer final : public Analyzer {
 public:
  std::string_view name() const override { return "thrower"; }
  bool detects(MismatchKind) const override { return false; }
  AnalysisResult analyze(const Apk&) override {
    const PhaseScope phase{"model"};
    throw ParseError{"synthetic parse failure"};
  }
};

TEST(AnalyzeOutcome, ConvertsThrowToStructuredFailure) {
  ThrowingAnalyzer tool;
  Apk apk;
  apk.name = "doomed-app";
  const AppOutcome outcome = analyze_outcome(tool, apk);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.app, "doomed-app");
  EXPECT_EQ(outcome.failure->kind, FailureKind::kParse);
  EXPECT_EQ(outcome.failure->phase, "model");
  // ParseError prefixes its class name; the payload must survive intact.
  EXPECT_NE(outcome.failure->message.find("synthetic parse failure"),
            std::string::npos);
  EXPECT_FALSE(outcome.report.completed);
  EXPECT_EQ(outcome.report.failure_reason, outcome.failure->message);
}

// --- shared corpus fixture -----------------------------------------------------

constexpr int kCorpusSize = 200;

/// 200 small corpus apps plus one clean suite baseline, built once — the
/// expensive part of this file, shared by the isolation and journal tests.
class FaultSuite : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto& repo = FrameworkRepository::standard();
    CorpusConfig config;
    config.app_count = kCorpusSize;
    config.size_base = 120.0;   // keep the fixture fast: small apps,
    config.size_spread = 1.5;   // same generative structure
    config.api_issue_mean = 6.0;
    corpus_ = new RealWorldCorpus{repo, config};
    apps_ = new std::vector<BenchApp>{corpus_->generate_range(
        0, kCorpusSize, 8)};
    SaintDroid miner{repo};
    db_ = new std::shared_ptr<const ApiDatabase>{miner.shared_database()};
    clean_ = new SuiteResult{run_suite_parallel(factory(), *apps_, 4)};
  }

  static void TearDownTestSuite() {
    delete clean_;
    delete db_;
    delete apps_;
    delete corpus_;
    clean_ = nullptr;
    db_ = nullptr;
    apps_ = nullptr;
    corpus_ = nullptr;
  }

  static AnalyzerFactory factory() {
    return [] {
      return std::make_unique<SaintDroid>(FrameworkRepository::standard(),
                                          *db_);
    };
  }

  static void expect_rows_deterministically_equal(const SuiteAppRow& a,
                                                  const SuiteAppRow& b) {
    EXPECT_EQ(a.app, b.app);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.incomplete, b.incomplete);
    EXPECT_EQ(a.failure_reason, b.failure_reason);
    EXPECT_EQ(a.failure.has_value(), b.failure.has_value());
    if (a.failure.has_value() && b.failure.has_value()) {
      EXPECT_EQ(a.failure->kind, b.failure->kind);
      EXPECT_EQ(a.failure->phase, b.failure->phase);
      EXPECT_EQ(a.failure->message, b.failure->message);
    }
    EXPECT_EQ(a.mismatch_count, b.mismatch_count);
    EXPECT_EQ(a.scores.api.tp, b.scores.api.tp);
    EXPECT_EQ(a.scores.api.fp, b.scores.api.fp);
    EXPECT_EQ(a.scores.api.fn, b.scores.api.fn);
    EXPECT_EQ(a.scores.apc.tp, b.scores.apc.tp);
    EXPECT_EQ(a.scores.apc.fn, b.scores.apc.fn);
    EXPECT_EQ(a.scores.prm.tp, b.scores.prm.tp);
    EXPECT_EQ(a.scores.prm.fn, b.scores.prm.fn);
    EXPECT_EQ(a.usage.peak_bytes, b.usage.peak_bytes);
    EXPECT_EQ(a.usage.loaded_classes, b.usage.loaded_classes);
  }

  static RealWorldCorpus* corpus_;
  static std::vector<BenchApp>* apps_;
  static std::shared_ptr<const ApiDatabase>* db_;
  static SuiteResult* clean_;
};

RealWorldCorpus* FaultSuite::corpus_ = nullptr;
std::vector<BenchApp>* FaultSuite::apps_ = nullptr;
std::shared_ptr<const ApiDatabase>* FaultSuite::db_ = nullptr;
SuiteResult* FaultSuite::clean_ = nullptr;

// --- the isolation property ----------------------------------------------------

TEST_F(FaultSuite, InjectedFaultsAreIsolatedAndDeterministicAcrossJobs) {
  const std::vector<int> victims{3, 41, 99, 150, 199};
  FaultPlan plan;
  for (const int v : victims) {
    plan.faults.push_back({"clvm.materialize",
                           (*apps_)[static_cast<std::size_t>(v)].apk.name,
                           FaultSpec::Kind::kInjected});
  }
  const FaultScope scope{plan};

  for (const int jobs : {1, 2, 8}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    const SuiteResult faulted = run_suite_parallel(factory(), *apps_, jobs);
    ASSERT_EQ(faulted.rows.size(), clean_->rows.size());
    EXPECT_EQ(faulted.failures, static_cast<int>(victims.size()));

    std::size_t victim_cursor = 0;
    for (std::size_t i = 0; i < faulted.rows.size(); ++i) {
      SCOPED_TRACE("row " + std::to_string(i));
      const bool is_victim =
          victim_cursor < victims.size() &&
          static_cast<std::size_t>(victims[victim_cursor]) == i;
      const SuiteAppRow& row = faulted.rows[i];
      if (is_victim) {
        ++victim_cursor;
        EXPECT_FALSE(row.completed);
        ASSERT_TRUE(row.failure.has_value());
        EXPECT_EQ(row.failure->kind, FailureKind::kInjected);
        EXPECT_EQ(row.failure->phase, "model");
        // A failed run scores every real issue as a miss.
        const GroundTruth& truth = (*apps_)[i].truth;
        EXPECT_EQ(row.scores.api.fn,
                  truth.real_count(MismatchKind::kApiInvocation));
        EXPECT_EQ(row.scores.api.tp, 0u);
      } else {
        expect_rows_deterministically_equal(row, clean_->rows[i]);
      }
    }
    EXPECT_EQ(victim_cursor, victims.size());
  }
}

TEST_F(FaultSuite, ParseFaultIsClassifiedAsParseFailure) {
  FaultPlan plan;
  plan.faults.push_back({"clvm.materialize", (*apps_)[0].apk.name,
                         FaultSpec::Kind::kParse});
  const FaultScope scope{plan};
  const SuiteResult faulted = run_suite_parallel(factory(), *apps_, 2);
  ASSERT_TRUE(faulted.rows[0].failure.has_value());
  EXPECT_EQ(faulted.rows[0].failure->kind, FailureKind::kParse);
  EXPECT_EQ(faulted.failures, 1);
}

// --- budgets -------------------------------------------------------------------

TEST(BudgetTracker, UnlimitedByDefault) {
  BudgetTracker tracker;
  for (int i = 0; i < 10'000; ++i) EXPECT_TRUE(tracker.allow_step());
  EXPECT_TRUE(tracker.allow_class(1'000'000));
  EXPECT_FALSE(tracker.exhausted());
}

TEST(BudgetTracker, StepCapIsStickyAndNamed) {
  AnalysisBudget budget;
  budget.max_worklist_steps = 3;
  BudgetTracker tracker{budget};
  EXPECT_TRUE(tracker.allow_step());
  EXPECT_TRUE(tracker.allow_step());
  EXPECT_TRUE(tracker.allow_step());
  EXPECT_FALSE(tracker.allow_step());
  EXPECT_TRUE(tracker.exhausted());
  EXPECT_STREQ(tracker.reason(), "steps");
  // Sticky: once exhausted, everything is refused.
  EXPECT_FALSE(tracker.allow_step());
  EXPECT_FALSE(tracker.allow_class(0));
}

TEST(BudgetTracker, ClassCap) {
  AnalysisBudget budget;
  budget.max_loaded_classes = 2;
  BudgetTracker tracker{budget};
  EXPECT_TRUE(tracker.allow_class(0));
  EXPECT_TRUE(tracker.allow_class(1));
  EXPECT_FALSE(tracker.allow_class(2));
  EXPECT_STREQ(tracker.reason(), "classes");
}

TEST_F(FaultSuite, ExhaustedBudgetDegradesToPartialReportWithoutThrowing) {
  SaintDroidOptions options;
  options.budget.max_worklist_steps = 4;  // adversarially tight
  SaintDroid tool{FrameworkRepository::standard(), *db_, options};

  // Pick an app with real API issues so the flat-scan fallback has work.
  const BenchApp* subject = nullptr;
  for (const auto& app : *apps_) {
    if (app.truth.real_count(MismatchKind::kApiInvocation) > 0) {
      subject = &app;
      break;
    }
  }
  ASSERT_NE(subject, nullptr);

  AnalysisResult result;
  ASSERT_NO_THROW(result = tool.analyze(subject->apk));
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.incomplete);
  EXPECT_EQ(result.incomplete_reason, "steps");
  // The fallback still surfaces unguarded API use the worklist never
  // reached: a partial report, not an empty one.
  EXPECT_FALSE(result.mismatches.empty());
  const std::string text = result.to_text(subject->apk.name);
  EXPECT_NE(text.find("incomplete"), std::string::npos);
}

TEST_F(FaultSuite, ClassBudgetDegradesGracefully) {
  SaintDroidOptions options;
  options.budget.max_loaded_classes = 1;
  SaintDroid tool{FrameworkRepository::standard(), *db_, options};
  AnalysisResult result;
  ASSERT_NO_THROW(result = tool.analyze((*apps_)[0].apk));
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.incomplete);
  EXPECT_EQ(result.incomplete_reason, "classes");
}

TEST_F(FaultSuite, UnlimitedBudgetMatchesDefaultRun) {
  // An explicitly unlimited budget must not perturb results.
  SaintDroidOptions options;
  SaintDroid tool{FrameworkRepository::standard(), *db_, options};
  const AnalysisResult result = tool.analyze((*apps_)[1].apk);
  EXPECT_FALSE(result.incomplete);
  EXPECT_EQ(result.mismatches.size(), clean_->rows[1].mismatch_count);
}

// --- journal -------------------------------------------------------------------

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

TEST(Journal, RowRoundTripsThroughJsonl) {
  SuiteAppRow row;
  row.app = "fdroid-app-7 \"quoted\"\n";
  row.completed = false;
  row.incomplete = true;
  row.failure_reason = "boom";
  AnalysisFailure failure;
  failure.kind = FailureKind::kInjected;
  failure.phase = "load";
  failure.message = "injected fault at clvm.materialize";
  row.failure = failure;
  row.mismatch_count = 17;
  row.scores.api = {3, 1, 2};
  row.scores.apc = {0, 0, 5};
  row.scores.prm = {1, 0, 0};
  row.usage.seconds = 0.25;
  row.usage.peak_bytes = 123456;
  row.usage.loaded_classes = 42;

  const std::string line = journal_line(row);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // one row, one line
  const auto parsed = parse_journal_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->app, row.app);
  EXPECT_EQ(parsed->completed, row.completed);
  EXPECT_EQ(parsed->incomplete, row.incomplete);
  EXPECT_EQ(parsed->failure_reason, row.failure_reason);
  ASSERT_TRUE(parsed->failure.has_value());
  EXPECT_EQ(parsed->failure->kind, FailureKind::kInjected);
  EXPECT_EQ(parsed->failure->phase, "load");
  EXPECT_EQ(parsed->failure->message, failure.message);
  EXPECT_EQ(parsed->mismatch_count, 17u);
  EXPECT_EQ(parsed->scores.api.tp, 3u);
  EXPECT_EQ(parsed->scores.api.fn, 2u);
  EXPECT_EQ(parsed->scores.apc.fn, 5u);
  EXPECT_EQ(parsed->usage.peak_bytes, 123456u);
  EXPECT_EQ(parsed->usage.loaded_classes, 42u);
}

TEST(Journal, CorruptLinesAreSkippedNotFatal) {
  const std::string path = temp_path("journal_corrupt.jsonl");
  {
    std::ofstream out{path, std::ios::trunc};
    SuiteAppRow good;
    good.app = "good-app";
    out << journal_line(good) << "\n";
    out << "{\"app\":\"half-written";  // truncated tail, no newline
  }
  const auto rows = load_journal(path);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].app, "good-app");
  std::remove(path.c_str());
}

TEST(Journal, MissingFileLoadsEmpty) {
  EXPECT_TRUE(load_journal(temp_path("journal_never_written.jsonl")).empty());
}

TEST(Journal, AppendSealsPartialTrailingLine) {
  const std::string path = temp_path("journal_seal.jsonl");
  {
    std::ofstream out{path, std::ios::trunc};
    out << "{\"app\":\"killed-mid-write";  // no newline: death mid-append
  }
  {
    JournalWriter writer{path, /*append=*/true};
    SuiteAppRow row;
    row.app = "after-resume";
    writer.append(row);
  }
  const auto rows = load_journal(path);
  ASSERT_EQ(rows.size(), 1u);  // partial line skipped, sealed row intact
  EXPECT_EQ(rows[0].app, "after-resume");
  std::remove(path.c_str());
}

TEST_F(FaultSuite, KillAndResumeReproducesUninterruptedRun) {
  const std::string path = temp_path("journal_resume.jsonl");
  std::remove(path.c_str());
  const std::size_t first_leg = 100;

  // Leg 1: journal the first 100 apps, then "die".
  {
    SuiteRunOptions options;
    options.jobs = 2;
    options.journal_path = path;
    const std::vector<BenchApp> head{apps_->begin(),
                                     apps_->begin() + first_leg};
    (void)run_suite_parallel(factory(), head, options);
  }

  // Simulate a kill mid-append: truncate to the header plus 40 complete
  // rows plus one partial line.
  {
    std::vector<std::string> lines;
    std::ifstream in{path};
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    ASSERT_EQ(lines.size(), first_leg + 1);  // header row + journaled rows
    in.close();
    std::ofstream out{path, std::ios::trunc};
    for (std::size_t i = 0; i < 41; ++i) out << lines[i] << "\n";
    out << lines[41].substr(0, lines[41].size() / 2);  // torn row
  }

  // Leg 2: resume over the full corpus.
  SuiteRunOptions options;
  options.jobs = 4;
  options.journal_path = path;
  options.resume = true;
  const SuiteResult resumed = run_suite_parallel(factory(), *apps_, options);

  // The merged result equals the uninterrupted clean run, row for row
  // (wall-clock seconds aside).
  ASSERT_EQ(resumed.rows.size(), clean_->rows.size());
  EXPECT_EQ(resumed.failures, clean_->failures);
  for (std::size_t i = 0; i < resumed.rows.size(); ++i) {
    SCOPED_TRACE("row " + std::to_string(i));
    expect_rows_deterministically_equal(resumed.rows[i], clean_->rows[i]);
  }

  // And the journal now covers every app exactly once.
  const auto rows = load_journal(path);
  EXPECT_EQ(rows.size(), apps_->size());
  std::remove(path.c_str());
}

// --- corpus generate_range -----------------------------------------------------

TEST_F(FaultSuite, GenerateRangeIsJobsInvariant) {
  const auto serial = corpus_->generate_range(20, 28, 1);
  const auto parallel = corpus_->generate_range(20, 28, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].apk.name, parallel[i].apk.name);
    EXPECT_EQ(serial[i].apk.serialize(), parallel[i].apk.serialize());
    EXPECT_EQ(serial[i].truth.issues.size(), parallel[i].truth.issues.size());
  }
}

}  // namespace
}  // namespace saintdroid
