// Differential and protocol tests for the dynamic work-stealing scheduler.
//
// The load-bearing property extends the shard differential: over a skewed
// 200-app corpus, {one process} ≡ {static shards, journals merged} ≡
// {work-stealing: coordinator + N racing agents} — byte-identically, in
// the canonical currency (rows sorted by app name, journal_line
// serialization, wall-clock seconds zeroed), across workers ∈ {1, 3, 7}
// and jobs ∈ {1, 2, 8}, including a worker killed mid-lease whose lease is
// reclaimed, reissued and re-analyzed. Around that sit the protocol unit
// tests: lease planning (largest-cost-first), rename-atomic claiming under
// a thread race (every lease claimed exactly once — the TSan leg's prey),
// TTL/corrupt-claim reclamation, publish idempotence, and the
// collect()-side lease accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "adf/repository.hpp"
#include "core/saintdroid.hpp"
#include "dist/agent.hpp"
#include "dist/coordinator.hpp"
#include "dist/lease.hpp"
#include "dist/workdir.hpp"
#include "support/errors.hpp"
#include "workload/corpus.hpp"
#include "workload/harness.hpp"
#include "workload/journal.hpp"

namespace saintdroid {
namespace {

std::string temp_dir(const std::string& name) {
  const std::string root = ::testing::TempDir() + name;
  std::filesystem::remove_all(root);
  return root;
}

/// The byte-identity currency shared with the shard differential tests.
std::string sorted_canonical(std::span<const SuiteAppRow> rows) {
  std::vector<std::string> lines;
  lines.reserve(rows.size());
  for (const auto& row : rows) lines.push_back(canonical_row_bytes(row));
  std::sort(lines.begin(), lines.end());
  std::string bytes;
  for (const auto& line : lines) {
    bytes += line;
    bytes += '\n';
  }
  return bytes;
}

std::vector<WorkItem> named_items(
    std::initializer_list<std::pair<const char*, std::uint64_t>> items) {
  std::vector<WorkItem> out;
  for (const auto& [name, cost] : items) {
    WorkItem item;
    item.name = name;
    item.cost = cost;
    out.push_back(std::move(item));
  }
  return out;
}

// --- lease planning ------------------------------------------------------------

TEST(PlanLeases, LargestCostFirstChunking) {
  const auto items = named_items(
      {{"small", 2}, {"huge", 90}, {"mid", 10}, {"big", 40}, {"tiny", 1}});
  const auto leases = plan_leases(items, 2);
  ASSERT_EQ(leases.size(), 3u);
  // Sorted by descending cost: huge(1), big(3), mid(2), small(0), tiny(4).
  EXPECT_EQ(leases[0].items, (std::vector<int>{1, 3}));
  EXPECT_EQ(leases[1].items, (std::vector<int>{2, 0}));
  EXPECT_EQ(leases[2].items, (std::vector<int>{4}));
  for (std::size_t i = 0; i < leases.size(); ++i)
    EXPECT_EQ(leases[i].id, static_cast<int>(i));
}

TEST(PlanLeases, CostTiesBreakByInputIndexForDeterminism) {
  const auto items = named_items({{"a", 5}, {"b", 5}, {"c", 5}});
  const auto leases = plan_leases(items, 2);
  ASSERT_EQ(leases.size(), 2u);
  EXPECT_EQ(leases[0].items, (std::vector<int>{0, 1}));
  EXPECT_EQ(leases[1].items, (std::vector<int>{2}));
}

TEST(PlanLeases, InvalidLeaseSizeThrows) {
  const auto items = named_items({{"a", 1}});
  EXPECT_THROW(plan_leases(items, 0), ConfigError);
  EXPECT_THROW(plan_leases(items, -3), ConfigError);
}

TEST(PlanLeases, DefaultLeaseSizeStaysFineGrained) {
  EXPECT_EQ(default_lease_size(0), 1);
  EXPECT_EQ(default_lease_size(10), 1);
  EXPECT_EQ(default_lease_size(200), 7);   // ~32 leases
  EXPECT_EQ(default_lease_size(3571), 64);  // paper-scale corpus: capped
  EXPECT_EQ(default_lease_size(1'000'000), 64);  // capped amortization
}

// --- container round trips -----------------------------------------------------

TEST(WorkQueueFormat, RoundTripsThroughItsBytes) {
  WorkQueue queue;
  queue.corpus = "deadbeef01234567";
  queue.tool = "saintdroid";
  queue.items = named_items({{"alpha", 7}, {"beta", 3}});
  queue.items[0].path = "/somewhere/alpha.apk";
  queue.leases = plan_leases(queue.items, 1);
  const WorkQueue parsed = WorkQueue::parse(queue.serialize());
  EXPECT_EQ(parsed.corpus, queue.corpus);
  EXPECT_EQ(parsed.tool, queue.tool);
  ASSERT_EQ(parsed.items.size(), 2u);
  EXPECT_EQ(parsed.items[0].name, "alpha");
  EXPECT_EQ(parsed.items[0].path, "/somewhere/alpha.apk");
  EXPECT_EQ(parsed.items[0].cost, 7u);
  ASSERT_EQ(parsed.leases.size(), 2u);
  EXPECT_EQ(parsed.leases[0].items, (std::vector<int>{0}));  // alpha first
}

TEST(WorkQueueFormat, RejectsPlansThatLeakOrDoubleAssignApps) {
  WorkQueue queue;
  queue.items = named_items({{"a", 1}, {"b", 1}});
  Lease lease;
  lease.id = 0;
  lease.items = {0};
  queue.leases = {lease};  // app "b" uncovered
  EXPECT_THROW(WorkQueue::parse(queue.serialize()), ParseError);

  queue.leases[0].items = {0, 1, 0};  // "a" leased twice
  EXPECT_THROW(WorkQueue::parse(queue.serialize()), ParseError);

  queue.leases[0].items = {0, 1, 2};  // index out of range
  EXPECT_THROW(WorkQueue::parse(queue.serialize()), ParseError);
}

TEST(LeaseStateFormat, RoundTripsThroughItsBytes) {
  LeaseState state;
  state.lease_id = 42;
  state.generation = 3;
  state.worker = "host-7/w2";
  state.heartbeat = 1'700'000'000ULL;
  const LeaseState parsed = LeaseState::parse(state.serialize());
  EXPECT_EQ(parsed.lease_id, 42);
  EXPECT_EQ(parsed.generation, 3);
  EXPECT_EQ(parsed.worker, "host-7/w2");
  EXPECT_EQ(parsed.heartbeat, 1'700'000'000ULL);
}

// --- the workdir protocol ------------------------------------------------------

/// A queue of `count` trivial items, one per lease — protocol tests need
/// lease files, not analyzable apps.
WorkQueue trivial_queue(int count) {
  WorkQueue queue;
  queue.corpus = "0123456789abcdef";
  queue.tool = "test";
  for (int i = 0; i < count; ++i) {
    WorkItem item;
    item.name = "app-" + std::to_string(i);
    item.cost = 1;
    queue.items.push_back(std::move(item));
  }
  queue.leases = plan_leases(queue.items, 1);
  return queue;
}

TEST(WorkDirProtocol, ClaimCompleteLifecycle) {
  const WorkDir dir{temp_dir("wd_lifecycle")};
  dir.publish(trivial_queue(3), 100);
  EXPECT_EQ(dir.status().open, 3);
  EXPECT_TRUE(dir.load_queue().has_value());

  const auto first = dir.claim_next("w0", 101);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->lease_id, 0);  // lowest id first
  EXPECT_EQ(first->generation, 0);
  const auto second = dir.claim_next("w1", 101);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->lease_id, 1);  // never the same lease twice

  WorkDirStatus status = dir.status();
  EXPECT_EQ(status.open, 1);
  EXPECT_EQ(status.claimed, 2);
  EXPECT_FALSE(status.finished());

  EXPECT_TRUE(dir.heartbeat(*first, 150));
  EXPECT_TRUE(dir.complete(*first));
  EXPECT_FALSE(dir.complete(*first));   // claim file is gone
  EXPECT_FALSE(dir.heartbeat(*first, 151));
  EXPECT_TRUE(dir.complete(*second));
  const auto third = dir.claim_next("w0", 102);
  ASSERT_TRUE(third.has_value());
  EXPECT_TRUE(dir.complete(*third));

  status = dir.status();
  EXPECT_EQ(status.done, 3);
  EXPECT_TRUE(status.finished());
  EXPECT_FALSE(dir.claim_next("w0", 103).has_value());

  const auto done = dir.done_states();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0].worker, "w0");
  EXPECT_EQ(done[1].worker, "w1");
  std::filesystem::remove_all(dir.root());
}

TEST(WorkDirProtocol, RacingClaimantsNeverShareALease) {
  const int kLeases = 64;
  const int kThreads = 8;
  const WorkDir dir{temp_dir("wd_race")};
  dir.publish(trivial_queue(kLeases), 1);

  std::vector<std::vector<int>> claimed(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dir, &claimed, t] {
      const std::string worker = "w" + std::to_string(t);
      while (const auto claim = dir.claim_next(worker, 2)) {
        claimed[static_cast<std::size_t>(t)].push_back(claim->lease_id);
        dir.complete(*claim);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  std::vector<int> all;
  for (const auto& ids : claimed)
    all.insert(all.end(), ids.begin(), ids.end());
  std::sort(all.begin(), all.end());
  // Exactly one claimant won each lease: no loss, no double assignment.
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kLeases));
  EXPECT_EQ(std::unique(all.begin(), all.end()), all.end());
  EXPECT_TRUE(dir.status().finished());
  std::filesystem::remove_all(dir.root());
}

TEST(WorkDirProtocol, ExpiredClaimIsReclaimedAndGenerationBumps) {
  const WorkDir dir{temp_dir("wd_reclaim")};
  dir.publish(trivial_queue(2), 100);
  const auto dead = dir.claim_next("dead-worker", 100);
  ASSERT_TRUE(dead.has_value());

  // Within the TTL nothing happens; past it the claim is reissued.
  EXPECT_EQ(dir.reclaim_expired(60, 130), 0);
  EXPECT_EQ(dir.reclaim_expired(60, 160), 1);
  EXPECT_EQ(dir.status().open, 2);

  // The dead worker's late complete() finds its claim gone.
  EXPECT_FALSE(dir.complete(*dead));

  const auto retry = dir.claim_next("live-worker", 161);
  ASSERT_TRUE(retry.has_value());
  EXPECT_EQ(retry->lease_id, dead->lease_id);
  EXPECT_EQ(retry->generation, 1);  // one reclaim survived
  EXPECT_TRUE(dir.complete(*retry));
  const auto done = dir.done_states();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].generation, 1);
  EXPECT_EQ(done[0].worker, "live-worker");
  std::filesystem::remove_all(dir.root());
}

TEST(WorkDirProtocol, CorruptClaimIsReclaimedNeverTrusted) {
  const WorkDir dir{temp_dir("wd_corrupt")};
  dir.publish(trivial_queue(1), 100);
  const auto claim = dir.claim_next("w0", 100);
  ASSERT_TRUE(claim.has_value());

  // Scribble over the claim file: heartbeat and owner are now unknowable.
  const std::string claim_path =
      dir.root() + "/leases/lease-000000.claim";
  {
    std::ofstream out{claim_path, std::ios::binary | std::ios::trunc};
    out << "not a lease state container";
  }
  // Even with a fresh "now" the corrupt claim counts as expired.
  EXPECT_EQ(dir.reclaim_expired(1'000'000, 100), 1);
  const auto retry = dir.claim_next("w1", 101);
  ASSERT_TRUE(retry.has_value());
  EXPECT_EQ(retry->lease_id, 0);
  EXPECT_EQ(retry->generation, 1);  // corrupt history counts one reclaim
  std::filesystem::remove_all(dir.root());
}

TEST(LeaseMonitorProtocol, TtlZeroReclaimsOnFirstObservation) {
  const WorkDir dir{temp_dir("wd_mon_zero")};
  dir.publish(trivial_queue(1), WorkDir::steady_seconds());
  const auto claim = dir.claim_next("w0", WorkDir::steady_seconds());
  ASSERT_TRUE(claim.has_value());
  LeaseMonitor monitor{dir};
  // ttl=0: "unchanged for >= 0 seconds" holds at the very first sighting.
  EXPECT_EQ(monitor.reclaim_stale(0), 1);
  EXPECT_EQ(dir.status().open, 1);
  const auto retry = dir.claim_next("w1", WorkDir::steady_seconds());
  ASSERT_TRUE(retry.has_value());
  EXPECT_EQ(retry->generation, 1);
  std::filesystem::remove_all(dir.root());
}

TEST(LeaseMonitorProtocol, HeartbeatDefeatsReclaimDeadClaimExpires) {
  const WorkDir dir{temp_dir("wd_mon_beat")};
  dir.publish(trivial_queue(2), WorkDir::steady_seconds());
  const auto live = dir.claim_next("live", WorkDir::steady_seconds());
  const auto dead = dir.claim_next("dead", WorkDir::steady_seconds());
  ASSERT_TRUE(live.has_value());
  ASSERT_TRUE(dead.has_value());

  LeaseMonitor monitor{dir};
  EXPECT_EQ(monitor.reclaim_stale(1), 0);  // first sighting opens windows
  // The live worker's heartbeat rewrites its claim bytes inside the ttl
  // window; the dead worker's file never changes again. Stamps only need
  // to differ, so march a fake clock — no cross-host agreement involved.
  std::uint64_t stamp = WorkDir::steady_seconds();
  for (int tick = 0; tick < 3; ++tick) {
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
    ASSERT_TRUE(dir.heartbeat(*live, ++stamp));
    monitor.reclaim_stale(1);
  }
  // >= 1.8s elapsed on the monitor's steady clock: only "dead" expired.
  EXPECT_EQ(dir.status().open, 1);
  EXPECT_EQ(dir.status().claimed, 1);
  EXPECT_FALSE(dir.complete(*dead));
  EXPECT_TRUE(dir.complete(*live));
  std::filesystem::remove_all(dir.root());
}

TEST(LeaseMonitorProtocol, CorruptClaimReclaimsImmediately) {
  const WorkDir dir{temp_dir("wd_mon_corrupt")};
  dir.publish(trivial_queue(1), WorkDir::steady_seconds());
  ASSERT_TRUE(dir.claim_next("w0", WorkDir::steady_seconds()).has_value());
  {
    std::ofstream out{dir.root() + "/leases/lease-000000.claim",
                      std::ios::binary | std::ios::trunc};
    out << "not a lease state container";
  }
  LeaseMonitor monitor{dir};
  // No ttl window for garbage: unparseable bytes are reclaimed on sight.
  EXPECT_EQ(monitor.reclaim_stale(1'000'000), 1);
  EXPECT_EQ(dir.status().open, 1);
  std::filesystem::remove_all(dir.root());
}

TEST(WorkDirProtocol, PublishIsIdempotentAndRefusesForeignCorpora) {
  const WorkDir dir{temp_dir("wd_publish")};
  const WorkQueue queue = trivial_queue(2);
  dir.publish(queue, 100);
  const auto claim = dir.claim_next("w0", 100);
  ASSERT_TRUE(claim.has_value());

  // A re-run coordinator publishes again: claim state survives, no lease
  // is reissued behind the claimant's back.
  dir.publish(queue, 200);
  EXPECT_EQ(dir.status().open, 1);
  EXPECT_EQ(dir.status().claimed, 1);

  WorkQueue other = trivial_queue(2);
  other.corpus = "ffffffffffffffff";
  EXPECT_THROW(dir.publish(other, 300), ConfigError);
  std::filesystem::remove_all(dir.root());
}

TEST(WorkDirProtocol, StaleFilesOfDoneLeasesAreIgnoredAndCollected) {
  const WorkDir dir{temp_dir("wd_stale")};
  dir.publish(trivial_queue(1), 100);
  const auto claim = dir.claim_next("w0", 100);
  ASSERT_TRUE(claim.has_value());
  // A reclaim races the completion: the lease ends both done and reopened.
  EXPECT_EQ(dir.reclaim_expired(0, 100), 1);
  const auto dup = dir.claim_next("w1", 101);
  ASSERT_TRUE(dup.has_value());
  EXPECT_TRUE(dir.complete(*dup));
  // The done marker wins the census despite the zombie's leftovers, and a
  // later reclaim pass garbage-collects a stale claim of a done lease.
  EXPECT_TRUE(dir.status().finished());
  EXPECT_EQ(dir.reclaim_expired(0, 200), 0);
  EXPECT_TRUE(dir.status().finished());
  std::filesystem::remove_all(dir.root());
}

TEST(Supervise, TimesOutWhenNobodyWorks) {
  const WorkDir dir{temp_dir("wd_timeout")};
  dir.publish(trivial_queue(1), WorkDir::now_seconds());
  SuperviseOptions options;
  options.ttl_seconds = 1000;
  options.poll_seconds = 0.01;
  options.timeout_seconds = 0.05;
  const SuperviseOutcome outcome = supervise(dir, options);
  EXPECT_FALSE(outcome.finished);
  std::filesystem::remove_all(dir.root());
}

TEST(Agent, FailsLoudlyWithoutAQueue) {
  const WorkDir dir{temp_dir("wd_noqueue")};
  AgentOptions options;
  options.worker = "w0";
  options.queue_wait_seconds = 0.05;
  options.poll_seconds = 0.01;
  options.resolve = [](const WorkItem&) { return BenchApp{}; };
  options.factory = [] {
    return std::make_unique<SaintDroid>(FrameworkRepository::standard());
  };
  EXPECT_THROW(run_agent(dir, options), ConfigError);
  std::filesystem::remove_all(dir.root());
}

TEST(PlanWorkQueue, ValidatesItsInputs) {
  EXPECT_THROW(plan_work_queue({}, {}, {}), ConfigError);
  BenchApp app;
  app.apk.name = "solo";
  const std::vector<BenchApp> apps{app};
  const std::vector<std::string> wrong_paths{"a.apk", "b.apk"};
  EXPECT_THROW(plan_work_queue(apps, wrong_paths, {}), ConfigError);
  const WorkQueue queue = plan_work_queue(apps, {}, {});
  EXPECT_EQ(queue.corpus, corpus_fingerprint(apps));
  ASSERT_EQ(queue.items.size(), 1u);
  EXPECT_EQ(queue.items[0].cost, 1u);  // empty app floors at cost 1
}

// --- the differential property -------------------------------------------------

constexpr int kCorpusSize = 200;

/// A skewed 200-app corpus (library-heavy stratum cranked up so a static
/// partition really does have a straggler shard), a shared pre-mined
/// database, and the single-process reference bytes.
class WorkStealSuite : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto& repo = FrameworkRepository::standard();
    CorpusConfig config;
    config.app_count = kCorpusSize;
    config.size_base = 120.0;   // keep the fixture fast: small apps,
    config.size_spread = 1.5;   // same generative structure
    config.api_issue_mean = 6.0;
    config.library_heavy_fraction = 0.10;  // the Fig. 3 outliers, amplified
    corpus_ = new RealWorldCorpus{repo, config};
    apps_ = new std::vector<BenchApp>{
        corpus_->generate_range(0, kCorpusSize, 8)};
    index_ = new std::unordered_map<std::string, std::size_t>{};
    for (std::size_t i = 0; i < apps_->size(); ++i)
      index_->emplace((*apps_)[i].apk.name, i);
    SaintDroid miner{repo};
    db_ = new std::shared_ptr<const ApiDatabase>{miner.shared_database()};
    fingerprint_ = new std::string{corpus_fingerprint(*apps_)};
    reference_ = new std::string{sorted_canonical(
        run_suite_parallel(factory(), *apps_, 4).rows)};
  }

  static void TearDownTestSuite() {
    delete reference_;
    delete fingerprint_;
    delete db_;
    delete index_;
    delete apps_;
    delete corpus_;
    reference_ = nullptr;
    fingerprint_ = nullptr;
    db_ = nullptr;
    index_ = nullptr;
    apps_ = nullptr;
    corpus_ = nullptr;
  }

  static AnalyzerFactory factory() {
    return [] {
      return std::make_unique<SaintDroid>(FrameworkRepository::standard(),
                                          *db_);
    };
  }

  static AppResolver resolver() {
    return [](const WorkItem& item) {
      const auto it = index_->find(item.name);
      if (it == index_->end())
        throw Error("resolver: unknown app " + item.name);
      return (*apps_)[it->second];
    };
  }

  /// Publishes the plan and drains it with `workers` in-process agents
  /// racing one work directory, then collects. The caller owns the
  /// assertions and removes `root` afterwards.
  static CollectResult run_stealing(const std::string& root, int workers,
                                    int jobs, int lease_size) {
    const WorkDir dir{root};
    CoordinatorOptions plan;
    plan.lease_size = lease_size;
    dir.publish(plan_work_queue(*apps_, {}, plan), WorkDir::now_seconds());
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      threads.emplace_back([&dir, w, jobs] {
        AgentOptions options;
        options.worker = "w" + std::to_string(w);
        options.jobs = jobs;
        options.ttl_seconds = 1000;  // healthy run: nothing expires
        options.poll_seconds = 0.002;
        options.resolve = resolver();
        options.factory = factory();
        (void)run_agent(dir, options);
      });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_TRUE(dir.status().finished());
    return collect(dir);
  }

  static RealWorldCorpus* corpus_;
  static std::vector<BenchApp>* apps_;
  static std::unordered_map<std::string, std::size_t>* index_;
  static std::shared_ptr<const ApiDatabase>* db_;
  static std::string* fingerprint_;
  static std::string* reference_;
};

RealWorldCorpus* WorkStealSuite::corpus_ = nullptr;
std::vector<BenchApp>* WorkStealSuite::apps_ = nullptr;
std::unordered_map<std::string, std::size_t>* WorkStealSuite::index_ =
    nullptr;
std::shared_ptr<const ApiDatabase>* WorkStealSuite::db_ = nullptr;
std::string* WorkStealSuite::fingerprint_ = nullptr;
std::string* WorkStealSuite::reference_ = nullptr;

TEST_F(WorkStealSuite, StealingEqualsSingleProcessAcrossWorkersAndJobs) {
  for (const int workers : {1, 3, 7}) {
    for (const int jobs : {1, 2, 8}) {
      SCOPED_TRACE("workers=" + std::to_string(workers) +
                   " jobs=" + std::to_string(jobs));
      const std::string root =
          temp_dir("ws_w" + std::to_string(workers) + "_j" +
                   std::to_string(jobs));
      const CollectResult collected =
          run_stealing(root, workers, jobs, /*lease_size=*/7);
      EXPECT_TRUE(collected.merge.clean());
      EXPECT_EQ(collected.merge.duplicates, 0u);  // healthy: no re-runs
      EXPECT_EQ(collected.suite.rows.size(),
                static_cast<std::size_t>(kCorpusSize));
      EXPECT_EQ(sorted_canonical(collected.suite.rows), *reference_);
      EXPECT_EQ(collected.suite.leases_issued, (kCorpusSize + 6) / 7u);
      EXPECT_EQ(collected.suite.leases_reclaimed, 0u);
      int leases = 0;
      for (const auto& count : collected.suite.worker_lease_counts) {
        EXPECT_LE(count.leases, static_cast<int>(
            collected.suite.leases_issued));
        leases += count.leases;
      }
      EXPECT_EQ(static_cast<std::size_t>(leases),
                collected.suite.leases_issued);
      std::filesystem::remove_all(root);
    }
  }
}

TEST_F(WorkStealSuite, StealingEqualsStaticShardsPlusMerge) {
  // The three-way closure: static shards + merge-journals produce the same
  // canonical bytes as the single-process reference, which the matrix test
  // above ties to work-stealing — single ≡ static ≡ stealing.
  const int shards = 3;
  std::vector<std::string> files;
  for (int s = 0; s < shards; ++s) {
    const std::string path = ::testing::TempDir() + "ws_static_" +
                             std::to_string(s) + "of3.jsonl";
    SuiteRunOptions options;
    options.jobs = 2;
    options.journal_path = path;
    options.corpus_id = *fingerprint_;
    options.shard_index = s;
    options.shard_count = shards;
    (void)run_suite_parallel(factory(), shard_slice(*apps_, s, shards),
                             options);
    files.push_back(path);
  }
  const JournalMerge merged = merge_journals(files);
  EXPECT_TRUE(merged.clean());
  EXPECT_EQ(sorted_canonical(merged.rows), *reference_);
  for (const auto& path : files) std::remove(path.c_str());
}

TEST_F(WorkStealSuite, KilledWorkersLeaseIsReclaimedReissuedAndDeduped) {
  const std::string root = temp_dir("ws_kill");
  const WorkDir dir{root};
  CoordinatorOptions plan;
  plan.lease_size = 5;
  const WorkQueue queue = plan_work_queue(*apps_, {}, plan);
  dir.publish(queue, WorkDir::now_seconds());

  // A zombie worker claims the most expensive lease, journals *half* of
  // it, then dies without heartbeating or completing.
  const auto zombie = dir.claim_next("zombie", WorkDir::now_seconds());
  ASSERT_TRUE(zombie.has_value());
  const Lease* lease = nullptr;
  for (const auto& candidate : queue.leases)
    if (candidate.id == zombie->lease_id) lease = &candidate;
  ASSERT_NE(lease, nullptr);
  std::vector<BenchApp> half;
  for (std::size_t i = 0; i < lease->items.size() / 2; ++i)
    half.push_back(
        (*apps_)[static_cast<std::size_t>(lease->items[i])]);
  ASSERT_FALSE(half.empty());
  {
    SuiteRunOptions options;
    options.jobs = 2;
    options.journal_path = dir.worker_journal_path("zombie");
    options.resume = true;
    options.corpus_id = queue.corpus;
    (void)run_suite_parallel(factory(), half, options);
  }

  // A surviving agent drains the directory; ttl 0 makes the zombie's
  // claim reclaimable the moment the survivor runs out of open leases.
  AgentOptions options;
  options.worker = "survivor";
  options.jobs = 2;
  options.ttl_seconds = 0;
  options.poll_seconds = 0.002;
  options.resolve = resolver();
  options.factory = factory();
  const AgentResult survivor = run_agent(dir, options);
  EXPECT_EQ(survivor.leases_reclaimed, 1);
  EXPECT_TRUE(dir.status().finished());

  const CollectResult collected = collect(dir);
  EXPECT_TRUE(collected.merge.clean());
  // The zombie's journaled rows dedup byte-identically against the
  // reissued execution's rows — work was repeated, results were not.
  EXPECT_EQ(collected.merge.duplicates, half.size());
  EXPECT_EQ(sorted_canonical(collected.suite.rows), *reference_);
  EXPECT_EQ(collected.suite.leases_reclaimed, 1u);
  ASSERT_EQ(collected.suite.worker_lease_counts.size(), 1u);
  EXPECT_EQ(collected.suite.worker_lease_counts[0].worker, "survivor");
  EXPECT_EQ(static_cast<std::size_t>(
                collected.suite.worker_lease_counts[0].leases),
            collected.suite.leases_issued);
  std::filesystem::remove_all(root);
}

TEST_F(WorkStealSuite, CollectBeforeFinishFailsLoudly) {
  const std::string root = temp_dir("ws_unfinished");
  const WorkDir dir{root};
  dir.publish(plan_work_queue(*apps_, {}, {}), WorkDir::now_seconds());
  EXPECT_THROW(collect(dir), Error);  // no journals at all
  // One lease journaled but the rest missing: still loud.
  const auto claim = dir.claim_next("w0", WorkDir::now_seconds());
  ASSERT_TRUE(claim.has_value());
  SuiteRunOptions options;
  options.jobs = 1;
  options.journal_path = dir.worker_journal_path("w0");
  options.resume = true;
  options.corpus_id = dir.load_queue()->corpus;
  (void)run_suite_parallel(factory(),
                           std::vector<BenchApp>{(*apps_)[0]}, options);
  EXPECT_THROW(collect(dir), Error);
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace saintdroid
