// Robustness suite for the online vetting service (src/serve).
//
// The load-bearing properties, each tested directly:
//
//   * Exactly-one-response: a 200-request soak at 2x queue capacity gets
//     one done|failed|rejected response per request — overload sheds,
//     never deadlocks or drops.
//   * Serve ≡ batch: every served row's canonical bytes equal the row a
//     batch run journals for the same package.
//   * Crash safety: a process "killed" between acceptance and enqueue (or
//     before responding) leaves a state directory whose next daemon
//     replays every accepted-but-unanswered request losslessly, and a
//     resubmission is answered from cache, byte-identically.
//   * Degradation: deadline exhaustion and cancellation produce flagged
//     partial rows, never a wedged worker.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "adf/repository.hpp"
#include "core/saintdroid.hpp"
#include "serve/codec.hpp"
#include "serve/daemon.hpp"
#include "serve/queue.hpp"
#include "serve/service.hpp"
#include "serve/state.hpp"
#include "support/errors.hpp"
#include "support/faults.hpp"
#include "support/sdmc.hpp"
#include "support/shutdown.hpp"
#include "workload/corpus.hpp"
#include "workload/harness.hpp"
#include "workload/journal.hpp"

namespace saintdroid {
namespace {

std::string temp_dir(const std::string& name) {
  const std::string root = ::testing::TempDir() + name;
  std::filesystem::remove_all(root);
  return root;
}

// --- codec ---------------------------------------------------------------------

TEST(ServeCodec, RequestRoundTrip) {
  ServeRequest request;
  request.id = "r\"42\"";
  request.apk_path = "/tmp/apps/x.apk";
  request.deadline_seconds = 2.5;
  const ServeRequest parsed = parse_serve_request(serve_request_line(request));
  EXPECT_EQ(parsed.id, request.id);
  EXPECT_EQ(parsed.apk_path, request.apk_path);
  EXPECT_DOUBLE_EQ(parsed.deadline_seconds, 2.5);
}

TEST(ServeCodec, RequestDefectsThrow) {
  EXPECT_THROW(parse_serve_request("not json"), ParseError);
  EXPECT_THROW(parse_serve_request("[1,2]"), ParseError);
  EXPECT_THROW(parse_serve_request(R"({"apk":"a"})"), ParseError);
  EXPECT_THROW(parse_serve_request(R"({"id":"r1"})"), ParseError);
  EXPECT_THROW(parse_serve_request(R"({"id":"r1","apk":"a","deadline":"x"})"),
               ParseError);
  EXPECT_THROW(parse_serve_request(R"({"id":"r1","apk":"a","deadline":-1})"),
               ParseError);
}

TEST(ServeCodec, ResponseCarriesJournalRowByteIdentically) {
  SuiteAppRow row;
  row.app = "App1";
  row.completed = true;
  row.incomplete = true;
  row.mismatch_count = 3;
  row.scores.api.fp = 3;
  row.usage.seconds = 1.25;

  ServeResponse response;
  response.id = "r1";
  response.status = ServeStatus::kDone;
  response.fingerprint = "00ff00ff00ff00ff";
  response.row = row;
  const std::string line = serve_response_line(response);

  // The flat merged object parses both as a response and as a plain
  // journal row — the serve/batch equivalence currency.
  const auto parsed = parse_serve_response(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->id, "r1");
  EXPECT_EQ(parsed->status, ServeStatus::kDone);
  EXPECT_EQ(parsed->fingerprint, response.fingerprint);
  ASSERT_TRUE(parsed->row.has_value());
  EXPECT_EQ(canonical_row_bytes(*parsed->row), canonical_row_bytes(row));

  const auto as_row = parse_journal_line(line);
  ASSERT_TRUE(as_row.has_value());
  EXPECT_EQ(canonical_row_bytes(*as_row), canonical_row_bytes(row));
}

TEST(ServeCodec, RejectedResponseRoundTrip) {
  ServeResponse response;
  response.id = "r9";
  response.status = ServeStatus::kRejected;
  response.reason = "overloaded";
  const auto parsed = parse_serve_response(serve_response_line(response));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, ServeStatus::kRejected);
  EXPECT_EQ(parsed->reason, "overloaded");
  EXPECT_FALSE(parsed->row.has_value());
}

TEST(ServeCodec, AcceptedRequestAndResultLinesRoundTrip) {
  AcceptedRequest accepted{"r1", "deadbeefdeadbeef", "App1", "/a/b.apk"};
  const auto parsed = parse_accepted_request(accepted_request_line(accepted));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->id, "r1");
  EXPECT_EQ(parsed->fingerprint, accepted.fingerprint);
  EXPECT_EQ(parsed->apk_path, accepted.apk_path);
  EXPECT_FALSE(parse_accepted_request("garbage").has_value());

  SuiteAppRow row;
  row.app = "App1";
  row.completed = false;
  row.failure_reason = "boom";
  const auto record = parse_result_line(result_line("deadbeef", row));
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->fingerprint, "deadbeef");
  EXPECT_EQ(canonical_row_bytes(record->row), canonical_row_bytes(row));
  EXPECT_FALSE(parse_result_line("{\"app\":\"x\"}").has_value());
}

TEST(ServeCodec, FingerprintIsContentKeyed) {
  const std::vector<std::uint8_t> a{1, 2, 3, 4};
  std::vector<std::uint8_t> b = a;
  EXPECT_EQ(apk_fingerprint(a), apk_fingerprint(b));
  EXPECT_EQ(apk_fingerprint(a).size(), 16u);
  b[2] ^= 0x40;  // any byte change is a different key
  EXPECT_NE(apk_fingerprint(a), apk_fingerprint(b));
}

// --- admission queue -----------------------------------------------------------

TEST(AdmissionQueue, ShedsDeterministicallyAtCapacity) {
  AdmissionQueue queue{2};
  EXPECT_TRUE(queue.try_push({}));
  EXPECT_TRUE(queue.try_push({}));
  EXPECT_FALSE(queue.try_push({}));  // high-water mark
  EXPECT_FALSE(queue.try_push({}));
  EXPECT_EQ(queue.shed_count(), 2u);
  EXPECT_EQ(queue.depth(), 2u);
  // Replay bypasses the mark: the acceptance journal is a promise.
  EXPECT_TRUE(queue.force_push({}));
  EXPECT_EQ(queue.depth(), 3u);
}

TEST(AdmissionQueue, CloseDrainsBacklogThenStopsPoppers) {
  AdmissionQueue queue{4};
  EXPECT_TRUE(queue.try_push({}));
  EXPECT_TRUE(queue.try_push({}));
  queue.close();
  EXPECT_FALSE(queue.try_push({}));   // closed refuses new work
  EXPECT_FALSE(queue.force_push({}));
  EXPECT_TRUE(queue.pop().has_value());   // but the backlog still drains
  EXPECT_TRUE(queue.pop().has_value());
  EXPECT_FALSE(queue.pop().has_value());  // closed and empty: exit signal
}

TEST(AdmissionQueue, PopBlocksUntilPushOrClose) {
  AdmissionQueue queue{4};
  std::atomic<int> popped{0};
  std::thread consumer{[&] {
    while (queue.pop().has_value()) ++popped;
  }};
  EXPECT_TRUE(queue.try_push({}));
  queue.close();
  consumer.join();
  EXPECT_EQ(popped.load(), 1);
}

// --- state directory -----------------------------------------------------------

TEST(ServeState, JournalsSealTornTailsAndSkipCorruptLines) {
  const std::string dir = temp_dir("serve_state");
  const StatePaths paths{dir};

  SuiteAppRow row;
  row.app = "App1";
  {
    ResultCache cache{paths.results_path()};
    cache.put("f1", row);
  }
  // A kill -9 mid-write: append garbage and a torn (newline-less) line.
  {
    std::ofstream out{paths.results_path(), std::ios::app};
    out << "corrupt line\n";
    out << "{\"fingerprint\":\"f2\",\"app\"";  // torn
  }
  ResultCache reopened{paths.results_path()};
  EXPECT_EQ(reopened.size(), 1u);
  EXPECT_TRUE(reopened.find("f1").has_value());
  EXPECT_FALSE(reopened.find("f2").has_value());
  // The torn tail was sealed: a new row starts on its own line.
  reopened.put("f3", row);
  ResultCache third{paths.results_path()};
  EXPECT_TRUE(third.find("f3").has_value());

  {
    RequestJournal requests{paths.requests_path()};
    requests.append({"r1", "f1", "App1", "/x.apk"});
  }
  {
    std::ofstream out{paths.requests_path(), std::ios::app};
    out << "{\"request\":";  // torn acceptance
  }
  RequestJournal sealed{paths.requests_path()};
  sealed.append({"r2", "f2", "App2", "/y.apk"});
  const auto loaded = RequestJournal::load(paths.requests_path());
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].id, "r1");
  EXPECT_EQ(loaded[1].id, "r2");
}

// --- service -------------------------------------------------------------------

/// Shares one small on-disk corpus and one mined database across the
/// service tests (mining dominates otherwise).
class VetServiceTest : public ::testing::Test {
 protected:
  static constexpr int kApps = 24;
  static constexpr int kCorpusSize = 48;

  static void SetUpTestSuite() {
    const auto& repo = FrameworkRepository::standard();
    CorpusConfig config;
    config.app_count = kCorpusSize;
    config.size_base = 80.0;   // small apps: this fixture tests plumbing,
    config.size_spread = 1.3;  // not analysis depth
    corpus_dir_ = new std::string{temp_dir("serve_corpus")};
    ensure_directory(*corpus_dir_);
    RealWorldCorpus corpus{repo, config};
    apps_ = new std::vector<BenchApp>;
    paths_ = new std::vector<std::string>;
    for (const BenchApp& generated :
         corpus.generate_range(0, kCorpusSize, 8)) {
      BenchApp app;
      app.apk = generated.apk;  // serve scores against an empty ledger
      const std::string path = *corpus_dir_ + "/" + app.apk.name + ".apk";
      write_file_atomic(path, app.apk.serialize());
      paths_->push_back(path);
      apps_->push_back(std::move(app));
    }
    SaintDroid miner{repo};
    db_ = new std::shared_ptr<const ApiDatabase>{miner.shared_database()};
    // The batch reference: what `saintdroid batch` would journal for the
    // same packages (no ground truth — exactly serve's scoring input).
    reference_ = new std::unordered_map<std::string, std::string>;
    const SuiteResult suite = run_suite_parallel(
        [] {
          return std::make_unique<SaintDroid>(FrameworkRepository::standard(),
                                              *db_);
        },
        std::span<const BenchApp>{apps_->data(), apps_->size()}, 4);
    for (const auto& row : suite.rows)
      reference_->emplace(row.app, canonical_row_bytes(row));
  }

  static void TearDownTestSuite() {
    delete reference_;
    delete db_;
    delete paths_;
    delete apps_;
    delete corpus_dir_;
    reference_ = nullptr;
    db_ = nullptr;
    paths_ = nullptr;
    apps_ = nullptr;
    corpus_dir_ = nullptr;
  }

  static ServeOptions options(int jobs, std::size_t queue) {
    ServeOptions options;
    options.jobs = jobs;
    options.queue_capacity = queue;
    options.database = *db_;
    options.repository = &FrameworkRepository::standard();
    return options;
  }

  /// Collects responses thread-safely; one collector per test.
  struct Collector {
    std::mutex mutex;
    std::vector<ServeResponse> responses;

    VetService::Responder sink() {
      return [this](const ServeResponse& response) {
        const std::lock_guard lock{mutex};
        responses.push_back(response);
      };
    }
  };

  static std::string* corpus_dir_;
  static std::vector<BenchApp>* apps_;
  static std::vector<std::string>* paths_;
  static std::shared_ptr<const ApiDatabase>* db_;
  static std::unordered_map<std::string, std::string>* reference_;
};

std::string* VetServiceTest::corpus_dir_ = nullptr;
std::vector<BenchApp>* VetServiceTest::apps_ = nullptr;
std::vector<std::string>* VetServiceTest::paths_ = nullptr;
std::shared_ptr<const ApiDatabase>* VetServiceTest::db_ = nullptr;
std::unordered_map<std::string, std::string>* VetServiceTest::reference_ =
    nullptr;

TEST_F(VetServiceTest, ServedRowsAreByteIdenticalToBatch) {
  VetService service{temp_dir("serve_eq"), options(2, 64)};
  Collector collected;
  for (int i = 0; i < kApps; ++i) {
    ServeRequest request;
    request.id = "r" + std::to_string(i);
    request.apk_path = (*paths_)[static_cast<std::size_t>(i)];
    service.submit(request, collected.sink());
  }
  service.drain();
  ASSERT_EQ(collected.responses.size(), static_cast<std::size_t>(kApps));
  for (const ServeResponse& response : collected.responses) {
    ASSERT_EQ(response.status, ServeStatus::kDone) << response.reason;
    ASSERT_TRUE(response.row.has_value());
    const auto it = reference_->find(response.row->app);
    ASSERT_NE(it, reference_->end());
    EXPECT_EQ(canonical_row_bytes(*response.row), it->second);
  }
}

TEST_F(VetServiceTest, SoakAtTwiceCapacityOneResponsePerRequest) {
  // Offered load far past the high-water mark: 200 requests from 8
  // threads into a 2-worker, 8-deep service. The daemon must answer every
  // single request (done or rejected: overloaded) and keep accepting —
  // shedding is the release valve, deadlock the failure mode under test.
  VetService service{temp_dir("serve_soak"), options(2, 8)};
  constexpr int kRequests = 200;
  std::mutex mutex;
  std::map<std::string, std::vector<ServeStatus>> responses;
  std::vector<std::thread> clients;
  std::atomic<int> next{0};
  for (int t = 0; t < 8; ++t) {
    clients.emplace_back([&] {
      for (;;) {
        const int i = next.fetch_add(1);
        if (i >= kRequests) break;
        ServeRequest request;
        request.id = "r" + std::to_string(i);
        request.apk_path =
            (*paths_)[static_cast<std::size_t>(i) % paths_->size()];
        service.submit(
            request, [&mutex, &responses](const ServeResponse& response) {
              const std::lock_guard lock{mutex};
              responses[response.id].push_back(response.status);
            });
      }
    });
  }
  for (auto& client : clients) client.join();
  service.drain();

  ASSERT_EQ(responses.size(), static_cast<std::size_t>(kRequests));
  for (const auto& [id, statuses] : responses)
    ASSERT_EQ(statuses.size(), 1u) << id << " answered twice";
  const ServeStats stats = service.stats();
  EXPECT_GT(stats.shed, 0u) << "2x offered load must shed";
  EXPECT_GT(stats.completed + stats.cache_hits, 0u);
  EXPECT_EQ(stats.accepted + stats.cache_hits + stats.shed + stats.rejected,
            static_cast<std::uint64_t>(kRequests));

  // Still accepting after the storm — shedding never wedges admission.
  Collector after;
  ServeRequest request;
  request.id = "after";
  request.apk_path = (*paths_)[0];
  service.submit(request, after.sink());
  service.drain();
  ASSERT_EQ(after.responses.size(), 1u);
  EXPECT_NE(after.responses[0].status, ServeStatus::kRejected);
}

TEST_F(VetServiceTest, ResubmissionIsServedFromCacheByteIdentically) {
  const std::string state = temp_dir("serve_cache");
  std::string first_bytes;
  {
    VetService service{state, options(1, 8)};
    Collector collected;
    ServeRequest request;
    request.id = "r1";
    request.apk_path = (*paths_)[1];
    service.submit(request, collected.sink());
    service.drain();
    ASSERT_EQ(collected.responses.size(), 1u);
    EXPECT_FALSE(collected.responses[0].cached);
    first_bytes = canonical_row_bytes(*collected.responses[0].row);

    Collector again;
    request.id = "r2";
    service.submit(request, again.sink());
    ASSERT_EQ(again.responses.size(), 1u);  // synchronous: no analysis
    EXPECT_TRUE(again.responses[0].cached);
    EXPECT_EQ(canonical_row_bytes(*again.responses[0].row), first_bytes);
  }
  // A fresh process over the same state directory inherits the cache.
  VetService warm{state, options(1, 8)};
  EXPECT_EQ(warm.stats().replayed, 0u);
  Collector collected;
  ServeRequest request;
  request.id = "r3";
  request.apk_path = (*paths_)[1];
  warm.submit(request, collected.sink());
  ASSERT_EQ(collected.responses.size(), 1u);
  EXPECT_TRUE(collected.responses[0].cached);
  EXPECT_EQ(canonical_row_bytes(*collected.responses[0].row), first_bytes);
}

TEST_F(VetServiceTest, CrashBetweenAcceptAndEnqueueReplaysLosslessly) {
  const std::string state = temp_dir("serve_replay");
  // "Kill" the daemon in the window after the acceptance journal flushed
  // but before the job reached the queue — the worst spot: the client got
  // no response and no worker ever saw the request.
  {
    VetService service{state, options(1, 8)};
    FaultScope scope{
        FaultPlan{{{"serve.enqueue", "", FaultSpec::Kind::kInjected}}}};
    ServeRequest request;
    request.id = "r1";
    request.apk_path = (*paths_)[2];
    Collector collected;
    EXPECT_THROW(service.submit(request, collected.sink()), InjectedFault);
    EXPECT_TRUE(collected.responses.empty());
  }
  // The restarted daemon replays the acceptance: the result is computed
  // and journaled with no client attached...
  VetService restarted{state, options(1, 8)};
  EXPECT_EQ(restarted.stats().replayed, 1u);
  restarted.drain();
  // ...so the client's resubmission is a cache hit, byte-identical to
  // what a batch run produces for that package.
  Collector collected;
  ServeRequest request;
  request.id = "r1-retry";
  request.apk_path = (*paths_)[2];
  restarted.submit(request, collected.sink());
  ASSERT_EQ(collected.responses.size(), 1u);
  EXPECT_TRUE(collected.responses[0].cached);
  EXPECT_EQ(collected.responses[0].status, ServeStatus::kDone);
  const auto it = reference_->find(collected.responses[0].row->app);
  ASSERT_NE(it, reference_->end());
  EXPECT_EQ(canonical_row_bytes(*collected.responses[0].row), it->second);
}

TEST_F(VetServiceTest, CrashBeforeRespondAnswersResubmissionFromCache) {
  const std::string state = temp_dir("serve_respond_crash");
  {
    VetService service{state, options(1, 8)};
    FaultScope scope{
        FaultPlan{{{"serve.respond", "", FaultSpec::Kind::kInjected}}}};
    ServeRequest request;
    request.id = "r1";
    request.apk_path = (*paths_)[3];
    Collector collected;
    service.submit(request, collected.sink());
    service.drain();
    // The worker's respond was "cut off" — the client saw the internal
    // error, but the result itself reached the journal first.
    ASSERT_EQ(collected.responses.size(), 1u);
    EXPECT_EQ(collected.responses[0].status, ServeStatus::kRejected);
  }
  VetService restarted{state, options(1, 8)};
  EXPECT_EQ(restarted.stats().replayed, 0u);  // result survived the crash
  Collector collected;
  ServeRequest request;
  request.id = "r1-retry";
  request.apk_path = (*paths_)[3];
  restarted.submit(request, collected.sink());
  ASSERT_EQ(collected.responses.size(), 1u);
  EXPECT_TRUE(collected.responses[0].cached);
}

TEST_F(VetServiceTest, ReplayOfVanishedPackageConvergesToFailureRow) {
  const std::string state = temp_dir("serve_replay_gone");
  {
    // Hand-craft the journal of a dead daemon whose accepted package no
    // longer exists on disk.
    const StatePaths paths{state};
    RequestJournal requests{paths.requests_path()};
    requests.append(
        {"r1", "aaaabbbbccccdddd", "Ghost", state + "/no-such.apk"});
  }
  VetService service{state, options(1, 8)};
  service.drain();
  service.shutdown();
  // The ledger converged: a structured failure row was journaled, so a
  // second restart replays nothing (replay terminates, never loops).
  VetService again{state, options(1, 8)};
  EXPECT_EQ(again.stats().replayed, 0u);
  const auto row = ResultCache{StatePaths{state}.results_path()}.find(
      "aaaabbbbccccdddd");
  ASSERT_TRUE(row.has_value());
  EXPECT_FALSE(row->completed);
  EXPECT_NE(row->failure_reason.find("replay"), std::string::npos);
}

TEST_F(VetServiceTest, MalformedAndUnreadableRequestsAreStructuredRejections) {
  VetService service{temp_dir("serve_bad"), options(1, 8)};
  Collector collected;
  service.submit_line("utter garbage", collected.sink());
  service.submit_line(R"({"id":"r1"})", collected.sink());
  service.submit_line(R"({"id":"r2","apk":"/does/not/exist.apk"})",
                      collected.sink());
  ASSERT_EQ(collected.responses.size(), 3u);
  for (const auto& response : collected.responses)
    EXPECT_EQ(response.status, ServeStatus::kRejected);
  EXPECT_NE(collected.responses[0].reason.find("bad-request"),
            std::string::npos);
  EXPECT_NE(collected.responses[2].reason.find("bad-package"),
            std::string::npos);
  EXPECT_EQ(service.stats().malformed, 2u);
}

TEST_F(VetServiceTest, ShutdownRejectsNewWorkAndAnswersAdmitted) {
  VetService service{temp_dir("serve_shutdown"), options(1, 8)};
  Collector collected;
  ServeRequest request;
  request.id = "r1";
  request.apk_path = (*paths_)[4];
  service.submit(request, collected.sink());
  service.shutdown();
  ASSERT_EQ(collected.responses.size(), 1u);  // admitted work was answered
  EXPECT_NE(collected.responses[0].status, ServeStatus::kRejected);

  Collector late;
  request.id = "r2";
  service.submit(request, late.sink());
  ASSERT_EQ(late.responses.size(), 1u);
  EXPECT_EQ(late.responses[0].status, ServeStatus::kRejected);
  EXPECT_EQ(late.responses[0].reason, "shutting-down");
}

TEST_F(VetServiceTest, TightDeadlineDegradesToFlaggedPartialRow) {
  ServeOptions tight = options(1, 8);
  tight.budget.deadline_seconds = 1e-9;  // exhausted on the first probe
  VetService service{temp_dir("serve_deadline"), tight};
  Collector collected;
  ServeRequest request;
  request.id = "r1";
  request.apk_path = (*paths_)[5];
  service.submit(request, collected.sink());
  service.drain();
  ASSERT_EQ(collected.responses.size(), 1u);
  ASSERT_EQ(collected.responses[0].status, ServeStatus::kDone);
  EXPECT_TRUE(collected.responses[0].row->incomplete)
      << "deadline exhaustion must degrade, not wedge or fail";
}

TEST_F(VetServiceTest, PerRequestDeadlineTightensServerDefault) {
  VetService service{temp_dir("serve_req_deadline"), options(1, 8)};
  Collector collected;
  ServeRequest request;
  request.id = "r1";
  request.apk_path = (*paths_)[6];
  request.deadline_seconds = 1e-9;
  service.submit(request, collected.sink());
  service.drain();
  ASSERT_EQ(collected.responses.size(), 1u);
  ASSERT_EQ(collected.responses[0].status, ServeStatus::kDone);
  EXPECT_TRUE(collected.responses[0].row->incomplete);
}

TEST_F(VetServiceTest, CancelInFlightDegradesWithoutLosingResponses) {
  VetService service{temp_dir("serve_cancel"), options(2, 64)};
  Collector collected;
  for (int i = 0; i < 12; ++i) {
    ServeRequest request;
    request.id = "r" + std::to_string(i);
    request.apk_path = (*paths_)[static_cast<std::size_t>(6 + i)];
    service.submit(request, collected.sink());
  }
  service.cancel_in_flight();
  service.drain();  // liveness: cancellation can never strand a request
  ASSERT_EQ(collected.responses.size(), 12u);
  for (const auto& response : collected.responses)
    EXPECT_NE(response.status, ServeStatus::kRejected);
}

// --- daemon transports ---------------------------------------------------------

TEST_F(VetServiceTest, SocketTransportAnswersAndShutsDownGracefully) {
  const std::string state = temp_dir("serve_socket");
  VetService service{state, options(1, 8)};
  std::atomic<bool> interrupt{false};
  DaemonOptions daemon;
  daemon.stdio = false;
  daemon.interrupted = [&interrupt] { return interrupt.load(); };
  int exit_code = -1;
  std::thread loop{[&] { exit_code = run_serve_daemon(service, daemon); }};

  std::vector<std::string> lines;
  for (int i = 0; i < 3; ++i) {
    ServeRequest request;
    request.id = "c" + std::to_string(i);
    request.apk_path = (*paths_)[static_cast<std::size_t>(i)];
    lines.push_back(serve_request_line(request));
  }
  lines.push_back("garbage request");
  const auto responses =
      submit_over_socket(service.paths().socket_path(), lines, 20.0);
  ASSERT_EQ(responses.size(), 4u);
  int done = 0;
  int rejected = 0;
  for (const std::string& line : responses) {
    const auto response = parse_serve_response(line);
    ASSERT_TRUE(response.has_value()) << line;
    if (response->status == ServeStatus::kDone) ++done;
    if (response->status == ServeStatus::kRejected) ++rejected;
  }
  EXPECT_EQ(done, 3);
  EXPECT_EQ(rejected, 1);

  interrupt.store(true);
  loop.join();
  EXPECT_EQ(exit_code, kShutdownExitCode);
  EXPECT_FALSE(std::filesystem::exists(service.paths().socket_path()))
      << "socket file must be unlinked on exit";
}

}  // namespace
}  // namespace saintdroid
