// Integration suite: the paper's headline claims, asserted end-to-end over
// the benchmark workloads. These are the regression gates for the
// reproduction — if any of them fails, a table or figure has drifted.
#include <gtest/gtest.h>

#include <memory>

#include "adf/repository.hpp"
#include "baselines/cid.hpp"
#include "baselines/cider.hpp"
#include "baselines/lint.hpp"
#include "core/saintdroid.hpp"
#include "workload/benchmarks.hpp"
#include "workload/harness.hpp"
#include "workload/corpus.hpp"

namespace saintdroid {
namespace {

const FrameworkRepository& repo() { return FrameworkRepository::standard(); }

// The shared harness (workload/harness.hpp) implements the methodology;
// thin adapters keep the assertions below readable.
struct SuiteScores {
  Score total;
  Score api;
  Score apc;
  Score prm;
  int failures = 0;
};

SuiteScores run_suite(Analyzer& tool) {
  const auto apps = accuracy_bench(repo());
  const SuiteResult result = saintdroid::run_suite(tool, apps);
  SuiteScores scores;
  scores.total = result.aggregate.total();
  scores.api = result.aggregate.api;
  scores.apc = result.aggregate.apc;
  scores.prm = result.aggregate.prm;
  scores.failures = result.failures;
  return scores;
}

// --- RQ1 gates (Table II) -------------------------------------------------------

TEST(Rq1, SaintDroidHeadline) {
  SaintDroid tool{repo()};
  const SuiteScores s = run_suite(tool);
  EXPECT_EQ(s.failures, 0);
  // Paper: P 79%, R 93%, F 85%. Gates hold a band around our calibration.
  EXPECT_GE(s.total.precision(), 0.80);
  EXPECT_GE(s.total.recall(), 0.90);
  EXPECT_GE(s.total.f_measure(), 0.85);
  // "SAINTDroid successfully detects 40 callback compatibility issues out
  // of 42 ... with no false positives."
  EXPECT_EQ(s.apc.tp, 40u);
  EXPECT_EQ(s.apc.fn, 2u);
  EXPECT_EQ(s.apc.fp, 0u);
  // PRM: unique capability, clean on the suite.
  EXPECT_EQ(s.prm.fn, 0u);
  EXPECT_EQ(s.prm.fp, 0u);
}

TEST(Rq1, CidProfile) {
  CidAnalyzer tool{repo()};
  const SuiteScores s = run_suite(tool);
  EXPECT_EQ(s.failures, 4);  // "CID fails to completely analyze four apps"
  EXPECT_EQ(s.apc.tp, 0u);
  EXPECT_EQ(s.prm.tp, 0u);
  // API-only recall well below SAINTDroid's (the paper's CID sits around
  // 59% on apps it completes; counting its four failures pulls it lower).
  EXPECT_GE(s.api.recall(), 0.35);
  EXPECT_LE(s.api.recall(), 0.75);
  EXPECT_GT(s.total.fp, 0u);  // cross-method-guard false alarms
}

TEST(Rq1, CiderProfile) {
  CiderAnalyzer tool;
  const SuiteScores s = run_suite(tool);
  EXPECT_EQ(s.failures, 0);
  EXPECT_EQ(s.api.tp, 0u);
  EXPECT_EQ(s.prm.tp, 0u);
  // "CIDER misses most of the issues identified by SAINTDroid."
  EXPECT_GT(s.apc.tp, 5u);
  EXPECT_LT(s.apc.recall(), 0.5);
}

TEST(Rq1, LintProfile) {
  LintAnalyzer tool{repo()};
  const SuiteScores s = run_suite(tool);
  EXPECT_GE(s.failures, 1);  // crashes on the largest app
  EXPECT_EQ(s.apc.tp, 0u);
  EXPECT_EQ(s.prm.tp, 0u);
  // Paper: recall ~19% with a high false-warning rate.
  EXPECT_LE(s.total.recall(), 0.30);
  EXPECT_GT(s.total.fp, 10u);
}

TEST(Rq1, ToolOrdering) {
  SaintDroid saint{repo()};
  CidAnalyzer cid{repo()};
  CiderAnalyzer cider;
  LintAnalyzer lint{repo()};
  const double f_saint = run_suite(saint).total.f_measure();
  const double f_cid = run_suite(cid).total.f_measure();
  const double f_cider = run_suite(cider).total.f_measure();
  const double f_lint = run_suite(lint).total.f_measure();
  EXPECT_GT(f_saint, f_cid);
  EXPECT_GT(f_saint, f_cider);
  EXPECT_GT(f_saint, f_lint);
}

// --- RQ3 gates (Fig. 4; timing asserted loosely to avoid flakes) ------------------

TEST(Rq3, MemoryGapOnMidsizeApps) {
  SaintDroid saint{repo()};
  CidAnalyzer cid{repo()};
  int compared = 0;
  for (const auto& app : accuracy_bench(repo())) {
    const auto rc = cid.analyze(app.apk);
    if (!rc.completed) continue;
    const auto rs = saint.analyze(app.apk);
    EXPECT_GT(rc.usage.peak_bytes, 2 * rs.usage.peak_bytes) << app.apk.name;
    ++compared;
  }
  EXPECT_GE(compared, 10);
}

TEST(Rq3, LazyLoadsFractionOfWorld) {
  SaintDroid saint{repo()};
  const auto apps = accuracy_bench(repo());
  const std::size_t world =
      repo().image(26).classes().size();
  for (const auto& app : apps) {
    const auto result = saint.analyze(app.apk);
    EXPECT_LT(result.usage.loaded_classes, world / 2) << app.apk.name;
  }
}

// --- Table IV ----------------------------------------------------------------------

TEST(TableIv, CapabilityMatrix) {
  SaintDroid saint{repo()};
  CidAnalyzer cid{repo()};
  CiderAnalyzer cider;
  LintAnalyzer lint{repo()};
  const MismatchKind kinds[] = {MismatchKind::kApiInvocation,
                                MismatchKind::kApiCallback,
                                MismatchKind::kPermissionRequest};
  const bool expected[4][3] = {
      {true, false, false},  // CID
      {false, true, false},  // CIDER
      {true, false, false},  // Lint
      {true, true, true},    // SAINTDroid
  };
  Analyzer* tools[] = {&cid, &cider, &lint, &saint};
  for (int t = 0; t < 4; ++t)
    for (int k = 0; k < 3; ++k)
      EXPECT_EQ(tools[t]->detects(kinds[k]), expected[t][k])
          << tools[t]->name() << " kind " << k;
}

// --- RQ2 spot check (a corpus slice; the full run is bench_rq2_corpus) -------------

TEST(Rq2, CorpusSliceRates) {
  const RealWorldCorpus corpus{repo()};
  SaintDroid tool{repo()};
  const int n = 150;
  int with_api = 0;
  Score api;
  for (int i = 0; i < n; ++i) {
    const BenchApp app = corpus.generate(i);
    const auto result = tool.analyze(app.apk);
    with_api += result.count(MismatchKind::kApiInvocation) > 0;
    api += score_detections(app.truth, result.mismatches,
                            MismatchKind::kApiInvocation);
  }
  // 41.19% +- sampling tolerance.
  EXPECT_GT(with_api, n * 0.30);
  EXPECT_LT(with_api, n * 0.55);
  // Sampled API precision ~85% (paper §V-B).
  EXPECT_GT(api.precision(), 0.75);
  EXPECT_LT(api.precision(), 0.95);
  EXPECT_GT(api.recall(), 0.90);
}

}  // namespace
}  // namespace saintdroid
