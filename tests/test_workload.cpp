// Tests for the workload layer: ledger derivation, scoring math, builder
// determinism, benchmark-suite invariants and corpus generation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "adf/repository.hpp"
#include "baselines/cid.hpp"
#include "workload/app_builder.hpp"
#include "workload/benchmarks.hpp"
#include "workload/corpus.hpp"

namespace saintdroid {
namespace {

namespace cat = catalog;

const FrameworkRepository& repo() { return FrameworkRepository::standard(); }

// --- scoring math --------------------------------------------------------------

TEST(Score, ConfusionMath) {
  GroundTruth truth;
  SeededIssue real;
  real.kind = MismatchKind::kApiInvocation;
  real.location = {"a/A", "f", "()V"};
  real.subject = {"android/x/Y", "g", "()V"};
  real.real = true;
  truth.issues.push_back(real);
  SeededIssue benign = real;
  benign.location.name = "h";
  benign.real = false;
  truth.issues.push_back(benign);

  Mismatch hit;
  hit.kind = MismatchKind::kApiInvocation;
  hit.location = real.location;
  hit.subject = real.subject;
  Mismatch miss = hit;
  miss.location.name = "h";  // matches only the benign entry -> FP

  const Score s = score_detections(truth, {hit, miss, hit});  // dup deduped
  EXPECT_EQ(s.tp, 1u);
  EXPECT_EQ(s.fp, 1u);
  EXPECT_EQ(s.fn, 0u);
  EXPECT_DOUBLE_EQ(s.precision(), 0.5);
  EXPECT_DOUBLE_EQ(s.recall(), 1.0);

  const Score none = score_detections(truth, {});
  EXPECT_EQ(none.fn, 1u);
  EXPECT_DOUBLE_EQ(none.recall(), 0.0);
  EXPECT_DOUBLE_EQ(none.precision(), 1.0);  // vacuous
}

TEST(Score, PermissionKindsShareKeyFamily) {
  GroundTruth truth;
  SeededIssue prm;
  prm.kind = MismatchKind::kPermissionRequest;
  prm.permission = "android.permission.CAMERA";
  prm.real = true;
  truth.issues.push_back(prm);

  Mismatch detected;
  detected.kind = MismatchKind::kPermissionRevocation;  // other PRM form
  detected.permission = "android.permission.CAMERA";
  const Score s = score_detections(truth, {detected},
                                   MismatchKind::kPermissionRequest);
  EXPECT_EQ(s.tp, 1u);
}

TEST(Score, KindFilter) {
  GroundTruth truth;
  SeededIssue apc;
  apc.kind = MismatchKind::kApiCallback;
  apc.location = {"a/A", "onX", "()V"};
  apc.subject = {"android/b/B", "onX", "()V"};
  apc.real = true;
  truth.issues.push_back(apc);
  const Score api_view =
      score_detections(truth, {}, MismatchKind::kApiInvocation);
  EXPECT_EQ(api_view.fn, 0u);  // the APC entry is outside the filter
  const Score apc_view =
      score_detections(truth, {}, MismatchKind::kApiCallback);
  EXPECT_EQ(apc_view.fn, 1u);
}

// --- ledger derivation -----------------------------------------------------------

TEST(AppBuilder, LedgerRealityMatrix) {
  // guard x placement -> real? derived from spec facts, not caller input.
  struct Case {
    GuardMode guard;
    Placement placement;
    bool real;
  };
  const Case cases[] = {
      {GuardMode::kNone, Placement::kReachable, true},
      {GuardMode::kLocal, Placement::kReachable, false},
      {GuardMode::kLocalViaRegister, Placement::kReachable, false},
      {GuardMode::kCrossMethod, Placement::kReachable, false},
      {GuardMode::kHidden, Placement::kReachable, false},
      {GuardMode::kNone, Placement::kDeadCode, false},
      {GuardMode::kNone, Placement::kSecondaryDex, true},
  };
  for (const auto& c : cases) {
    AppBuilder b{"matrix", "com.w.matrix", repo().spec()};
    b.sdk(14, 27);
    b.api_call(cat::get_color_state_list(), c.guard, c.placement);
    const auto built = b.build();
    ASSERT_EQ(built.truth.issues.size(), 1u);
    EXPECT_EQ(built.truth.issues[0].real, c.real)
        << "guard=" << static_cast<int>(c.guard)
        << " placement=" << static_cast<int>(c.placement);
  }
}

TEST(AppBuilder, SafeApiIsBenignEvenUnguarded) {
  AppBuilder b{"safe", "com.w.safe", repo().spec()};
  b.sdk(21, 27);
  b.api_call(cat::set_background());  // introduced 16 <= minSdk 21
  const auto built = b.build();
  EXPECT_EQ(built.truth.real_count(), 0u);
  EXPECT_EQ(built.truth.issues[0].tag, "safe");
}

TEST(AppBuilder, ForwardIssueDerived) {
  AppBuilder b{"fwd", "com.w.fwd", repo().spec()};
  b.sdk(14, 22);
  b.api_call(cat::http_client_execute());
  const auto built = b.build();
  ASSERT_EQ(built.truth.real_count(), 1u);
  EXPECT_EQ(built.truth.issues[0].tag, "forward");
}

TEST(AppBuilder, PermissionKindFollowsTarget) {
  AppBuilder modern{"m", "com.w.m", repo().spec()};
  modern.sdk(19, 26);
  modern.permission_use(cat::camera_open());
  const auto built_modern = modern.build();
  ASSERT_EQ(built_modern.truth.issues.size(), 1u);
  EXPECT_EQ(built_modern.truth.issues[0].kind,
            MismatchKind::kPermissionRequest);

  AppBuilder legacy{"l", "com.w.l", repo().spec()};
  legacy.sdk(19, 22);
  legacy.permission_use(cat::camera_open());
  const auto built_legacy = legacy.build();
  EXPECT_EQ(built_legacy.truth.issues[0].kind,
            MismatchKind::kPermissionRevocation);
}

TEST(AppBuilder, PermissionAddedToManifest) {
  AppBuilder b{"perm", "com.w.perm", repo().spec()};
  b.sdk(19, 26);
  b.permission_use(cat::insert_image());
  const auto built = b.build();
  EXPECT_TRUE(built.apk.manifest.requests_permission(
      "android.permission.WRITE_EXTERNAL_STORAGE"));
}

TEST(AppBuilder, ProtocolWithLowMinSdkIsItselfAnApcIssue) {
  AppBuilder b{"proto", "com.w.proto", repo().spec()};
  b.sdk(16, 26);
  b.implement_runtime_permission_protocol();
  const auto built = b.build();
  EXPECT_EQ(built.truth.real_count(MismatchKind::kApiCallback), 1u);
  AppBuilder b23{"proto23", "com.w.proto23", repo().spec()};
  b23.sdk(23, 26);
  b23.implement_runtime_permission_protocol();
  EXPECT_EQ(b23.build().truth.real_count(MismatchKind::kApiCallback), 0u);
}

TEST(AppBuilder, PadToReachesTarget) {
  AppBuilder b{"pad", "com.w.pad", repo().spec()};
  b.sdk(16, 26);
  b.pad_to(20'000);
  const auto built = b.build();
  EXPECT_GE(built.apk.dex_loc(), 18'000u);
  EXPECT_LE(built.apk.dex_loc(), 30'000u);
}

TEST(AppBuilder, DeterministicAcrossBuilds) {
  const auto make = [] {
    AppBuilder b{"det", "com.w.det", repo().spec()};
    b.sdk(16, 26);
    b.api_call(cat::get_color_state_list());
    b.callback_override(cat::on_attach_context());
    b.pad_to(5'000);
    return b.build();
  };
  EXPECT_EQ(make().apk.serialize(), make().apk.serialize());
}

TEST(AppBuilder, ApkSurvivesSerializationWithSeeds) {
  AppBuilder b{"roundtrip", "com.w.rt", repo().spec()};
  b.sdk(14, 27);
  b.api_call(cat::get_color_state_list(), GuardMode::kNone,
             Placement::kSecondaryDex);
  const auto built = b.build();
  const Apk back = Apk::parse(built.apk.serialize());
  EXPECT_EQ(back.dexes.size(), 2u);
  EXPECT_EQ(back.serialize(), built.apk.serialize());
}

// --- catalog collections -----------------------------------------------------------

TEST(Catalog, SafeApisAreActuallySafe) {
  const ApiInterval range{14, kMaxApiLevel};
  for (const auto& api : collect_safe_apis(repo().spec(), range, 200)) {
    const auto* cls = repo().spec().find_class(api.declaring);
    ASSERT_NE(cls, nullptr) << api.declaring;
    bool found = false;
    for (const auto& m : cls->methods) {
      if (m.name != api.name || m.params != api.params) continue;
      found = true;
      EXPECT_TRUE(m.permission.empty());
      EXPECT_TRUE(m.calls.empty());
      EXPECT_FALSE(m.callback);
      EXPECT_LE(m.life.introduced, range.lo());
    }
    EXPECT_TRUE(found) << api.declaring << "." << api.name;
  }
}

TEST(Catalog, MismatchApisAreInsideRange) {
  const ApiInterval range{14, kMaxApiLevel};
  const auto apis = collect_mismatch_apis(repo().spec(), range, 200);
  EXPECT_FALSE(apis.empty());
  for (const auto& api : apis) {
    const auto* cls = repo().spec().find_class(api.declaring);
    for (const auto& m : cls->methods)
      if (m.name == api.name && m.params == api.params) {
        EXPECT_GT(m.life.introduced, range.lo());
      }
  }
}

// --- benchmark suites ---------------------------------------------------------------

TEST(Benchmarks, SuiteShape) {
  const auto cid = cid_bench(repo());
  EXPECT_EQ(cid.size(), 7u);
  const auto cider = cider_bench(repo());
  EXPECT_EQ(cider.size(), 20u);
  int unbuildable = 0;
  for (const auto& app : cider) unbuildable += !app.apk.manifest.buildable;
  EXPECT_EQ(unbuildable, 8);
  EXPECT_EQ(accuracy_bench(repo()).size(), 19u);
}

TEST(Benchmarks, ApcGroundTruthMatchesPaper) {
  std::size_t real_apc = 0;
  std::size_t hidden_apc = 0;
  for (const auto& app : accuracy_bench(repo())) {
    real_apc += app.truth.real_count(MismatchKind::kApiCallback);
    for (const auto& i : app.truth.issues)
      if (i.real && i.tag == "hidden_callback") ++hidden_apc;
  }
  // The paper's objects of analysis harbour 42 callback issues, 2 of which
  // hide in runtime-generated classes (SAINTDroid's 40/42).
  EXPECT_EQ(real_apc, 42u);
  EXPECT_EQ(hidden_apc, 2u);
}

TEST(Benchmarks, FourAppsExceedCidBudget) {
  int oversized = 0;
  for (const auto& app : accuracy_bench(repo()))
    oversized += app.apk.dex_loc() > CidOptions{}.max_app_loc;
  EXPECT_EQ(oversized, 4);
}

TEST(Benchmarks, Deterministic) {
  const auto a = accuracy_bench(repo());
  const auto b = accuracy_bench(repo());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].apk.serialize(), b[i].apk.serialize()) << a[i].apk.name;
}

// --- corpus ---------------------------------------------------------------------------

TEST(Corpus, DeterministicPerIndex) {
  const RealWorldCorpus corpus{repo()};
  const BenchApp a = corpus.generate(17);
  const BenchApp b = corpus.generate(17);
  EXPECT_EQ(a.apk.serialize(), b.apk.serialize());
  EXPECT_EQ(a.truth.issues.size(), b.truth.issues.size());
  const BenchApp c = corpus.generate(18);
  EXPECT_NE(a.apk.serialize(), c.apk.serialize());
}

TEST(Corpus, PopulationStatistics) {
  const RealWorldCorpus corpus{repo()};
  int target_modern = 0;
  const int sample = 250;
  for (int i = 0; i < sample; ++i) {
    const BenchApp app = corpus.generate(i);
    ASSERT_GE(app.apk.manifest.min_sdk, 8);
    ASSERT_LE(app.apk.manifest.target_sdk, 29);
    target_modern += app.apk.manifest.target_sdk >= 23;
    EXPECT_LE(app.apk.dex_loc(), 90'000u);
  }
  // 50.8% of the population targets >= 23 (binomial tolerance).
  EXPECT_GT(target_modern, sample * 0.40);
  EXPECT_LT(target_modern, sample * 0.62);
}

TEST(Corpus, SizeReportsConfiguredCount) {
  const RealWorldCorpus corpus{repo()};
  EXPECT_EQ(corpus.size(), 3571);
}

// --- version chains -------------------------------------------------------------

std::uint64_t fnv1a(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : bytes) h = (h ^ b) * 0x100000001b3ULL;
  return h;
}

VersionChainConfig small_chain_config() {
  VersionChainConfig config;
  config.slots = 5;
  config.breadth = 4;
  config.target_loc = 200;
  return config;
}

// One (key, real, tag) row per seeded issue, restricted to constructs whose
// containing method lives in `cls` (empty = all).
std::vector<std::string> ledger_rows(const GroundTruth& truth,
                                     const std::string& cls = {}) {
  std::vector<std::string> rows;
  for (const SeededIssue& issue : truth.issues) {
    if (!cls.empty() && issue.location.class_name != cls) continue;
    rows.push_back(issue.key() + "|" + (issue.real ? "real" : "benign") + "|" +
                   issue.tag);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(VersionChain, PureDeterministicAndStableAppName) {
  const auto config = small_chain_config();
  const BenchApp a = generate_chain_version(repo(), config, 3, 2);
  const BenchApp b = generate_chain_version(repo(), config, 3, 2);
  EXPECT_EQ(a.apk.serialize(), b.apk.serialize());
  EXPECT_EQ(ledger_rows(a.truth), ledger_rows(b.truth));
  // Consecutive versions of one chain differ in content but keep the app
  // name — the identity the incremental cache keys on.
  const BenchApp next = generate_chain_version(repo(), config, 3, 3);
  EXPECT_EQ(a.apk.name, next.apk.name);
  EXPECT_NE(a.apk.serialize(), next.apk.serialize());
}

TEST(VersionChain, EditedSlotsChangeTruthUntouchedSlotsKeepIt) {
  const auto config = small_chain_config();
  // Bump 1 edits slots 0 and 1; slots 2..4 and MainActivity are untouched,
  // so their ledger rows must survive byte-identically.
  bool some_edit_changed_truth = false;
  for (int chain = 0; chain < 8; ++chain) {
    const BenchApp v0 = generate_chain_version(repo(), config, chain, 0);
    const BenchApp v1 = generate_chain_version(repo(), config, chain, 1);
    const std::string pkg = "app/chain/c" + std::to_string(chain);
    for (int slot = config.edits_per_version; slot < config.slots; ++slot) {
      const std::string cls = pkg + "/chain/Slot" + std::to_string(slot);
      EXPECT_EQ(ledger_rows(v0.truth, cls), ledger_rows(v1.truth, cls))
          << "chain " << chain << " untouched slot " << slot;
    }
    for (int slot = 0; slot < config.edits_per_version; ++slot) {
      const std::string cls = pkg + "/chain/Slot" + std::to_string(slot);
      some_edit_changed_truth |=
          ledger_rows(v0.truth, cls) != ledger_rows(v1.truth, cls);
    }
  }
  // Guard flips and tombstones flip `real` bits; across 8 chains at least
  // one bump must have changed an edited slot's ground truth.
  EXPECT_TRUE(some_edit_changed_truth);
}

TEST(VersionChain, GenerationLeavesLegacyCorpusStreamUntouched) {
  const RealWorldCorpus corpus{repo()};
  const BenchApp before = corpus.generate(17);
  // Chain generation shares the builder and catalog machinery; it must not
  // perturb the single-version corpus stream through any hidden state.
  (void)generate_chain_version(repo(), small_chain_config(), 0, 3);
  const BenchApp after = corpus.generate(17);
  EXPECT_EQ(before.apk.serialize(), after.apk.serialize());
  EXPECT_EQ(ledger_rows(before.truth), ledger_rows(after.truth));
}

TEST(VersionChain, LegacyCorpusGoldenHash) {
  // Locks the default-config corpus byte stream: adding the version-chain
  // axis (or future axes) must not shift apps that existing studies cite.
  const RealWorldCorpus corpus{repo()};
  EXPECT_EQ(fnv1a(corpus.generate(0).apk.serialize()), 0x3596f66a1e3928c4ULL);
  EXPECT_EQ(fnv1a(corpus.generate(17).apk.serialize()), 0xd8a8668fbe709ca8ULL);
}

}  // namespace
}  // namespace saintdroid
