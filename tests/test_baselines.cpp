// Tests for the baseline reimplementations: each documented blind spot of
// CID, CIDER and Lint must actually manifest, and each documented strength
// must hold.
#include <gtest/gtest.h>

#include "adf/repository.hpp"
#include "baselines/cid.hpp"
#include "baselines/cider.hpp"
#include "baselines/lint.hpp"
#include "core/saintdroid.hpp"
#include "workload/app_builder.hpp"

namespace saintdroid {
namespace {

namespace cat = catalog;

const FrameworkRepository& repo() { return FrameworkRepository::standard(); }

AppBuilder make_builder(const char* name, int min_sdk, int target_sdk) {
  AppBuilder b{name, std::string{"com.base."} + name, repo().spec()};
  b.sdk(min_sdk, target_sdk);
  return b;
}

// --- CID ---------------------------------------------------------------------

TEST(Cid, DetectsDirectUnguardedCall) {
  auto b = make_builder("cid-basic", 14, 27);
  b.api_call(cat::get_color_state_list());
  auto built = b.build();
  CidAnalyzer cid{repo()};
  EXPECT_EQ(cid.analyze(built.apk).count(MismatchKind::kApiInvocation), 1u);
}

TEST(Cid, HandlesLocalGuard) {
  auto b = make_builder("cid-guard", 14, 27);
  b.api_call(cat::get_color_state_list(), GuardMode::kLocal);
  b.api_call(cat::get_color_state_list(), GuardMode::kLocalViaRegister);
  auto built = b.build();
  CidAnalyzer cid{repo()};
  EXPECT_TRUE(cid.analyze(built.apk).mismatches.empty());
}

TEST(Cid, FalsePositiveOnFieldCachedGuard) {
  // CID's data flow does not model SDK_INT cached in instance fields.
  auto b = make_builder("cid-field", 14, 27);
  b.api_call(cat::get_color_state_list(), GuardMode::kLocalViaField);
  auto built = b.build();
  CidAnalyzer cid{repo()};
  const auto result = cid.analyze(built.apk);
  EXPECT_EQ(result.count(MismatchKind::kApiInvocation), 1u);
  EXPECT_EQ(score_detections(built.truth, result.mismatches).fp, 1u);
}

TEST(Cid, FalsePositiveOnCrossMethodGuard) {
  auto b = make_builder("cid-cross", 14, 27);
  b.api_call(cat::get_color_state_list(), GuardMode::kCrossMethod);
  auto built = b.build();
  CidAnalyzer cid{repo()};
  const auto result = cid.analyze(built.apk);
  EXPECT_EQ(result.count(MismatchKind::kApiInvocation), 1u);
  // ...and the ledger says benign: a false alarm.
  EXPECT_EQ(score_detections(built.truth, result.mismatches).fp, 1u);
}

TEST(Cid, MissesAppSubclassReceiver) {
  auto b = make_builder("cid-inherit", 14, 27);
  b.inherited_api_call(cat::get_color_state_list("android/view/View"));
  auto built = b.build();
  CidAnalyzer cid{repo()};
  EXPECT_TRUE(cid.analyze(built.apk).mismatches.empty());
}

TEST(Cid, ResolvesFrameworkSubclassReceiver) {
  auto b = make_builder("cid-fw-inherit", 14, 27);
  b.api_call(cat::get_color_state_list("android/app/Activity"));
  auto built = b.build();
  CidAnalyzer cid{repo()};
  EXPECT_EQ(cid.analyze(built.apk).count(MismatchKind::kApiInvocation), 1u);
}

TEST(Cid, MissesSecondaryDex) {
  auto b = make_builder("cid-late", 14, 27);
  b.api_call(cat::get_color_state_list(), GuardMode::kNone,
             Placement::kSecondaryDex);
  auto built = b.build();
  CidAnalyzer cid{repo()};
  EXPECT_TRUE(cid.analyze(built.apk).mismatches.empty());
}

TEST(Cid, BackwardOnly) {
  auto b = make_builder("cid-forward", 14, 22);
  b.api_call(cat::http_client_execute());  // removed at 23
  auto built = b.build();
  CidAnalyzer cid{repo()};
  EXPECT_TRUE(cid.analyze(built.apk).mismatches.empty());
}

TEST(Cid, FlagsDeadCode) {
  // No reachability analysis: dead library code is scanned and flagged.
  auto b = make_builder("cid-dead", 14, 27);
  b.api_call(cat::get_color_state_list(), GuardMode::kNone,
             Placement::kDeadCode);
  auto built = b.build();
  CidAnalyzer cid{repo()};
  const auto result = cid.analyze(built.apk);
  EXPECT_EQ(result.count(MismatchKind::kApiInvocation), 1u);
  EXPECT_EQ(score_detections(built.truth, result.mismatches).fp, 1u);
}

TEST(Cid, NoApcNoPrm) {
  auto b = make_builder("cid-other", 14, 26);
  b.callback_override(cat::on_attach_context());
  b.permission_use(cat::camera_open());
  auto built = b.build();
  CidAnalyzer cid{repo()};
  const auto result = cid.analyze(built.apk);
  EXPECT_EQ(result.count(MismatchKind::kApiCallback), 0u);
  EXPECT_EQ(result.permission_count(), 0u);
  EXPECT_FALSE(cid.detects(MismatchKind::kApiCallback));
  EXPECT_FALSE(cid.detects(MismatchKind::kPermissionRequest));
}

TEST(Cid, FailsOnOversizedApps) {
  auto b = make_builder("cid-huge", 14, 27);
  b.api_call(cat::get_color_state_list());
  b.pad_to(70'000);
  auto built = b.build();
  CidAnalyzer cid{repo()};
  const auto result = cid.analyze(built.apk);
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.failure_reason.find("600s"), std::string::npos);
}

TEST(Cid, EagerMemoryExceedsLazy) {
  auto b = make_builder("cid-memory", 14, 27);
  b.api_call(cat::get_color_state_list());
  b.pad_to(8'000);
  auto built = b.build();
  CidAnalyzer cid{repo()};
  SaintDroid saint{repo()};
  const auto cid_result = cid.analyze(built.apk);
  const auto saint_result = saint.analyze(built.apk);
  ASSERT_TRUE(cid_result.completed);
  EXPECT_GT(cid_result.usage.peak_bytes, 2 * saint_result.usage.peak_bytes);
  EXPECT_GT(cid_result.usage.loaded_classes,
            2 * saint_result.usage.loaded_classes);
}

// --- CIDER --------------------------------------------------------------------

TEST(Cider, DetectsModelledCallback) {
  auto b = make_builder("cider-hit", 14, 27);
  b.callback_override(cat::on_attach_context());  // Fragment: modelled
  auto built = b.build();
  CiderAnalyzer cider;
  EXPECT_EQ(cider.analyze(built.apk).count(MismatchKind::kApiCallback), 1u);
}

TEST(Cider, MissesUnmodelledClass) {
  auto b = make_builder("cider-view", 14, 27);
  b.callback_override(cat::drawable_hotspot_changed());  // View: unmodelled
  auto built = b.build();
  CiderAnalyzer cider;
  EXPECT_TRUE(cider.analyze(built.apk).mismatches.empty());
}

TEST(Cider, MissesCallbackAbsentFromDocumentation) {
  auto b = make_builder("cider-doc", 14, 27);
  b.callback_override(cat::on_picture_in_picture_mode_changed());  // omitted
  auto built = b.build();
  CiderAnalyzer cider;
  EXPECT_TRUE(cider.analyze(built.apk).mismatches.empty());
}

TEST(Cider, DocumentationErrorOnTrimMemory) {
  // Real introduction: 14. Documentation says 13. An app with minSdk 13
  // has a real [13,13] mismatch that CIDER's model cannot see.
  auto b = make_builder("cider-doc13", 13, 26);
  b.callback_override(cat::on_trim_memory());
  auto built = b.build();
  ASSERT_EQ(built.truth.real_count(MismatchKind::kApiCallback), 1u);
  CiderAnalyzer cider;
  EXPECT_TRUE(cider.analyze(built.apk).mismatches.empty());
  // With minSdk 12 both the truth and the model agree again.
  auto b2 = make_builder("cider-doc12", 12, 26);
  b2.callback_override(cat::on_trim_memory());
  auto built2 = b2.build();
  EXPECT_EQ(cider.analyze(built2.apk).count(MismatchKind::kApiCallback), 1u);
}

TEST(Cider, WalksThroughAppIntermediateClasses) {
  // App class extends app class extends Activity: the PI-graph ancestor
  // walk passes through app-level intermediates.
  DexBuilder dex;
  dex.add_class("com/base/Mid", "android/app/Activity");
  auto& leaf = dex.add_class("com/base/Leaf", "com/base/Mid");
  leaf.add_method("onMultiWindowModeChanged", "V", {"Z"}).return_void();
  Apk apk;
  apk.name = "cider-chain";
  apk.manifest.package = "c";
  apk.manifest.min_sdk = 14;
  apk.manifest.target_sdk = 26;
  apk.dexes.push_back(dex.build());
  CiderAnalyzer cider;
  EXPECT_EQ(cider.analyze(apk).count(MismatchKind::kApiCallback), 1u);
}

TEST(Cider, NoApiNoPrm) {
  auto b = make_builder("cider-other", 14, 26);
  b.api_call(cat::get_color_state_list());
  b.permission_use(cat::camera_open());
  auto built = b.build();
  CiderAnalyzer cider;
  const auto result = cider.analyze(built.apk);
  EXPECT_EQ(result.count(MismatchKind::kApiInvocation), 0u);
  EXPECT_EQ(result.permission_count(), 0u);
}

// --- Lint ---------------------------------------------------------------------

TEST(Lint, RequiresBuildableSource) {
  auto b = make_builder("lint-nobuild", 14, 27);
  b.buildable(false);
  b.api_call(cat::get_color_state_list());
  auto built = b.build();
  LintAnalyzer lint{repo()};
  const auto result = lint.analyze(built.apk);
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.failure_reason.find("build"), std::string::npos);
}

TEST(Lint, DetectsDirectCuratedCall) {
  auto b = make_builder("lint-basic", 14, 27);
  b.api_call(cat::get_color_state_list());
  auto built = b.build();
  LintAnalyzer lint{repo()};
  EXPECT_EQ(lint.analyze(built.apk).count(MismatchKind::kApiInvocation), 1u);
}

TEST(Lint, HandlesDirectLiteralGuardOnly) {
  auto b = make_builder("lint-guards", 14, 27);
  b.api_call(cat::get_color_state_list(), GuardMode::kLocal);            // ok
  b.api_call(cat::get_color_state_list(), GuardMode::kLocalViaRegister); // FP
  auto built = b.build();
  LintAnalyzer lint{repo()};
  const auto result = lint.analyze(built.apk);
  EXPECT_EQ(result.count(MismatchKind::kApiInvocation), 1u);
  EXPECT_EQ(score_detections(built.truth, result.mismatches).fp, 1u);
}

TEST(Lint, StaleDatabaseMissesExtensionSurface) {
  // Bulk ("android/synth/*") APIs are absent from Lint's api-versions.xml.
  const auto candidates =
      collect_mismatch_apis(repo().spec(), ApiInterval{14, kMaxApiLevel});
  const ApiUse* bulk = nullptr;
  for (const auto& api : candidates)
    if (api.declaring.rfind("android/synth/", 0) == 0) {
      bulk = &api;
      break;
    }
  ASSERT_NE(bulk, nullptr);
  auto b = make_builder("lint-stale", 14, 27);
  b.api_call(*bulk);
  auto built = b.build();
  ASSERT_EQ(built.truth.real_count(), 1u);
  LintAnalyzer lint{repo()};
  EXPECT_TRUE(lint.analyze(built.apk).mismatches.empty());
}

TEST(Lint, NoHierarchyResolution) {
  // Receiver is a framework subclass; the method is declared on Context.
  // Lint's declared-name lookup finds no entry and stays silent.
  auto b = make_builder("lint-inherit", 14, 27);
  b.api_call(cat::get_color_state_list("android/app/Activity"));
  auto built = b.build();
  LintAnalyzer lint{repo()};
  EXPECT_TRUE(lint.analyze(built.apk).mismatches.empty());
}

TEST(Lint, CrashesOnHugeApps) {
  auto b = make_builder("lint-huge", 14, 27);
  b.api_call(cat::get_color_state_list());
  b.pad_to(125'000);
  auto built = b.build();
  LintAnalyzer lint{repo()};
  EXPECT_FALSE(lint.analyze(built.apk).completed);
}

TEST(Lint, NoApcNoPrm) {
  auto b = make_builder("lint-other", 14, 26);
  b.callback_override(cat::on_attach_context());
  b.permission_use(cat::camera_open());
  auto built = b.build();
  LintAnalyzer lint{repo()};
  const auto result = lint.analyze(built.apk);
  EXPECT_EQ(result.count(MismatchKind::kApiCallback), 0u);
  EXPECT_EQ(result.permission_count(), 0u);
}

}  // namespace
}  // namespace saintdroid
