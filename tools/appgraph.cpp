// appgraph — dumps the call graph of a package as Graphviz DOT, with the
// same lazy, hierarchy-driven construction the compatibility analysis
// uses.
//
//   appgraph <apk-file> [--stats]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "adf/repository.hpp"
#include "clvm/clvm.hpp"
#include "core/callgraph.hpp"
#include "support/errors.hpp"

namespace sd = saintdroid;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: appgraph <apk> [--stats]\n");
    return 2;
  }
  const bool stats_only = argc > 2 && std::strcmp(argv[2], "--stats") == 0;

  try {
    std::ifstream in{argv[1], std::ios::binary};
    if (!in) throw sd::Error(std::string{"cannot open "} + argv[1]);
    const std::vector<std::uint8_t> bytes{
        std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
    const sd::Apk apk = sd::Apk::parse(bytes);

    const auto& repo = sd::FrameworkRepository::standard();
    const int level =
        sd::FrameworkRepository::clamp_level(apk.manifest.target_sdk);
    sd::ClassLoaderVm vm{apk, repo.image(level), true,
                         &repo.class_index(level)};
    sd::ClassHierarchy hierarchy{vm};
    const sd::CallGraph graph = sd::CallGraph::build(apk, hierarchy);

    if (stats_only) {
      std::size_t entries = 0;
      std::size_t framework = 0;
      for (const auto& node : graph.nodes()) {
        entries += node.is_entry;
        framework += node.is_framework;
      }
      std::printf("%s: %zu nodes (%zu app, %zu framework boundary, %zu "
                  "entry points), %zu edges, %llu classes loaded\n",
                  apk.name.c_str(), graph.nodes().size(),
                  graph.reachable_app_methods(), framework, entries,
                  graph.edges().size(),
                  static_cast<unsigned long long>(vm.loaded_class_count()));
      return 0;
    }
    std::fputs(graph.to_dot(apk.name).c_str(), stdout);
    return 0;
  } catch (const sd::Error& e) {
    std::fprintf(stderr, "appgraph: %s\n", e.what());
    return 2;
  }
}
