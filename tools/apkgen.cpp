// apkgen — writes workload packages to disk for the CLI and external
// tooling.
//
//   apkgen bench <output-dir>          # the 19 benchmark apps + the 8
//                                      # unbuildable ones (.apk files)
//   apkgen corpus <output-dir> <n>     # the first n corpus apps
//   apkgen demo <output-file>          # one app with every mismatch kind
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "adf/repository.hpp"
#include "workload/app_builder.hpp"
#include "workload/benchmarks.hpp"
#include "workload/corpus.hpp"

namespace sd = saintdroid;
namespace fs = std::filesystem;

namespace {

void write_file(const fs::path& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out{path, std::ios::binary};
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "apkgen: cannot write %s\n", path.c_str());
    std::exit(2);
  }
}

std::string sanitize(std::string name) {
  for (auto& c : name)
    if (c == ' ' || c == '/' || c == '+') c = '_';
  return name;
}

int usage() {
  std::fprintf(stderr,
               "usage: apkgen bench <dir> | apkgen corpus <dir> <n> | "
               "apkgen demo <file>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string mode = argv[1];
  const auto& repo = sd::FrameworkRepository::standard();

  if (mode == "demo") {
    namespace cat = sd::catalog;
    sd::AppBuilder b{"demo", "com.apkgen.demo", repo.spec()};
    b.sdk(14, 26);
    b.api_call(cat::get_color_state_list());
    b.api_call(cat::http_client_execute());
    b.callback_override(cat::on_attach_context());
    b.permission_use(cat::camera_open());
    write_file(argv[2], b.build().apk.serialize());
    std::printf("wrote %s\n", argv[2]);
    return 0;
  }

  const fs::path dir = argv[2];
  fs::create_directories(dir);

  if (mode == "bench") {
    int written = 0;
    for (const auto& app : sd::cid_bench(repo)) {
      write_file(dir / (sanitize(app.apk.name) + ".apk"),
                 app.apk.serialize());
      ++written;
    }
    for (const auto& app : sd::cider_bench(repo)) {
      write_file(dir / (sanitize(app.apk.name) + ".apk"),
                 app.apk.serialize());
      ++written;
    }
    std::printf("wrote %d benchmark apps to %s\n", written,
                dir.string().c_str());
    return 0;
  }
  if (mode == "corpus") {
    if (argc < 4) return usage();
    const int n = std::atoi(argv[3]);
    const sd::RealWorldCorpus corpus{repo};
    for (int i = 0; i < n && i < corpus.size(); ++i) {
      const sd::BenchApp app = corpus.generate(i);
      write_file(dir / (sanitize(app.apk.name) + ".apk"),
                 app.apk.serialize());
    }
    std::printf("wrote %d corpus apps to %s\n", n, dir.string().c_str());
    return 0;
  }
  return usage();
}
