#!/usr/bin/env bash
# Doc-drift lint: every `--flag` the docs show on a line mentioning
# `saintdroid` must still appear in `saintdroid --help` output. Docs and
# the CLI otherwise drift apart silently — a renamed or removed flag keeps
# living in prose long after the binary stopped accepting it.
#
# Usage: tools/check_doc_drift.sh <saintdroid-binary> [docs-dir]
set -euo pipefail

bin="${1:?usage: check_doc_drift.sh <saintdroid-binary> [docs-dir]}"
docs="${2:-docs}"

help_text="$("$bin" --help)"
if [[ -z "$help_text" ]]; then
  echo "doc-drift: '$bin --help' printed nothing" >&2
  exit 1
fi

status=0
for doc in "$docs"/*.md; do
  [[ -e "$doc" ]] || continue
  # Only lines that actually mention the CLI: flags in prose about other
  # tools (cmake, ctest) are none of our business.
  while IFS= read -r flag; do
    if ! grep -qF -- "$flag" <<< "$help_text"; then
      echo "doc-drift: $doc references flag '$flag' that" \
           "'saintdroid --help' does not print" >&2
      status=1
    fi
  done < <(grep -h 'saintdroid' "$doc" |
           grep -oE -e '--[a-z][a-z-]*' | sort -u)
done

if [[ "$status" == 0 ]]; then
  echo "doc-drift: OK (docs flags all present in --help)"
fi
exit "$status"
