// saintdroid — command-line front end.
//
//   saintdroid analyze <apk-file> [--json] [--suggest] [--levels a,b,c]
//                                 [--db <database-file>]
//                                 [--model-cache <dir>] [--incr-cache <dir>]
//   saintdroid batch   <apk-file>... [--jobs N] [--db <database-file>]
//                                    [--shard i/N]
//                                    [--journal <file> [--resume]]
//                                    [--model-cache <dir>]
//                                    [--incr-cache <dir>]
//   saintdroid merge-journals [--stats] <out-journal> <in-journal>...
//   saintdroid coordinate <workdir> <apk-file>... [--lease-size N]
//                                    [--ttl S] [--timeout S] [--init-only]
//   saintdroid work    <workdir> [--jobs N] [--worker NAME]
//                                [--db <database-file>]
//                                [--model-cache <dir>] [--ttl S]
//                                [--max-leases K] [--wait S]
//   saintdroid serve   <statedir> [--jobs N] [--queue N] [--deadline S]
//                                 [--stdio] [--no-socket]
//                                 [--incr-cache <dir>]
//   saintdroid submit  <statedir> <apk-file>... [--deadline S] [--wait S]
//   saintdroid disasm  <apk-file>
//   saintdroid mine    <output-database-file>
//
// Consumes packages produced by apkgen (or any code using
// Apk::serialize()), runs the analysis, and prints a text or JSON report,
// optionally with repair suggestions and against an explicit framework
// version set. `mine` persists the ARM database once so later `analyze
// --db` runs skip the mining pass (§III-B's reusable model). `batch`
// analyzes many packages across a worker pool — one mined database shared
// by every worker, fault isolation per app, one summary line per app in
// input order regardless of `--jobs`. `--journal` appends each finished
// row to a crash-safe JSONL file so a killed batch can pick up where it
// left off with `--resume`. `--shard i/N` analyzes only the deterministic
// interleaved slice {i, i+N, ...} of the app list — the multi-process /
// multi-host fan-out: give every process the *same* app list and a
// distinct shard, then combine the per-shard journals with
// `merge-journals`, which deduplicates by app name, fails loudly when the
// journals came from different corpora or shard layouts, and reports (and
// exits non-zero on) divergent duplicate rows. `--model-cache <dir>` keeps
// the mined models (ARM database and framework substrate tables) in an
// on-disk cache keyed by framework fingerprint: the first run in a fresh
// directory mines and stores, every later process — including concurrent
// shards sharing the directory — starts warm, skipping the mining pass
// entirely with byte-identical results (see docs/FORMAT.md, `.sdmc`).
// `--incr-cache <dir>` adds the *per-app* incremental fact cache on top:
// re-analyzing an updated package re-explores only the classes its diff
// dirties and splices cached facts for the rest, falling back (counted) to
// full analysis whenever the cached entry or the diff cannot be trusted.
// Results are byte-identical either way; the batch summary reports
// hits/dirty-classes/fallbacks.
//
// `coordinate`/`work` replace the static `--shard` partition with dynamic
// work-stealing (see docs/parallelism.md): `coordinate` publishes a
// largest-cost-first lease plan into a shared work directory, supervises
// the lease lifecycle (reclaiming leases whose workers crashed), and
// merges every worker journal into <workdir>/merged.jsonl; each `work`
// process claims leases until the directory is finished. `--jobs 0`
// resolves to the host's hardware concurrency in both `batch` and `work`.
//
// `serve` runs the long-lived vetting daemon (docs/robustness.md): warm
// framework + mined models held across requests, bounded admission queue,
// explicit overload shedding, per-request deadlines, and a crash-safe
// request journal in <statedir> that replays accepted-but-unanswered
// requests after a kill -9. `submit` is the matching client: it sends one
// request per package over <statedir>/serve.sock and prints the response
// lines. `batch`, `work` and `serve` all exit with code 4 after a graceful
// SIGINT/SIGTERM shutdown (journals sealed, in-flight apps finished).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <span>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <unistd.h>

#include "adf/repository.hpp"
#include "core/advisor.hpp"
#include "dist/agent.hpp"
#include "dist/coordinator.hpp"
#include "core/json.hpp"
#include "core/model_cache.hpp"
#include "core/saintdroid.hpp"
#include "dex/disasm.hpp"
#include "serve/codec.hpp"
#include "serve/daemon.hpp"
#include "serve/service.hpp"
#include "support/errors.hpp"
#include "support/shutdown.hpp"
#include "support/meter.hpp"
#include "support/thread_pool.hpp"
#include "workload/harness.hpp"
#include "workload/journal.hpp"

namespace sd = saintdroid;

namespace {

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw sd::Error("cannot open " + path);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

std::vector<int> parse_levels(const std::string& arg) {
  std::vector<int> levels;
  std::size_t pos = 0;
  while (pos < arg.size()) {
    const std::size_t comma = arg.find(',', pos);
    const std::string token =
        arg.substr(pos, comma == std::string::npos ? comma : comma - pos);
    levels.push_back(std::stoi(token));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return levels;
}

/// The one usage text, printed to stderr (error path) or stdout
/// (`--help`). ci/verify.sh lint-checks every `--flag` the docs mention
/// against this output, so a flag that exists must be listed here.
void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: saintdroid analyze <apk> [--json] [--suggest] "
               "[--levels a,b,c] [--db <file>]\n"
               "                          [--model-cache <dir>] "
               "[--incr-cache <dir>]\n"
               "       saintdroid batch <apk>... [--jobs N] [--db <file>] "
               "[--shard i/N]\n"
               "                        [--journal <file> [--resume]]\n"
               "                        [--model-cache <dir>] "
               "[--incr-cache <dir>]\n"
               "       saintdroid merge-journals [--stats] <out-journal> "
               "<in-journal>...\n"
               "       saintdroid coordinate <workdir> <apk>... "
               "[--lease-size N] [--ttl S]\n"
               "                             [--timeout S] [--init-only]\n"
               "       saintdroid work <workdir> [--jobs N] "
               "[--worker NAME] [--db <file>]\n"
               "                       [--model-cache <dir>] [--ttl S] "
               "[--max-leases K] [--wait S]\n"
               "       saintdroid serve <statedir> [--jobs N] [--queue N] "
               "[--deadline S]\n"
               "                        [--stdio] [--no-socket] "
               "[--incr-cache <dir>]\n"
               "       saintdroid submit <statedir> <apk>... [--deadline S] "
               "[--wait S]\n"
               "       saintdroid disasm <apk>\n"
               "       saintdroid mine <output-db-file>\n"
               "       saintdroid --help\n");
}

int usage() {
  print_usage(stderr);
  return 2;
}

/// Parses "i/N" into {i, N}; false on malformed specs or i outside [0, N).
bool parse_shard_spec(const char* arg, int& index, int& count) {
  char* end = nullptr;
  const long i = std::strtol(arg, &end, 10);
  if (end == arg || *end != '/') return false;
  const char* count_text = end + 1;
  const long n = std::strtol(count_text, &end, 10);
  if (end == count_text || *end != '\0') return false;
  if (n < 1 || i < 0 || i >= n) return false;
  index = static_cast<int>(i);
  count = static_cast<int>(n);
  return true;
}

/// Prints the per-app rows of a suite exactly like `batch` does, and
/// returns the total mismatch count. Shared by `batch` and `coordinate` so
/// their per-app report lines cannot drift apart.
std::uint64_t print_suite_rows(const sd::SuiteResult& suite) {
  std::uint64_t total = 0;
  for (const auto& row : suite.rows) {
    total += row.mismatch_count;
    if (row.failure.has_value()) {
      std::printf("%-24s FAILED  %s in %s: %s\n", row.app.c_str(),
                  sd::failure_kind_name(row.failure->kind),
                  row.failure->phase.c_str(), row.failure->message.c_str());
    } else {
      std::printf("%-24s %s  %zu mismatch%s (%.1f ms)\n", row.app.c_str(),
                  row.completed ? (row.incomplete ? "part  " : "ok    ")
                                : "FAILED",
                  row.mismatch_count, row.mismatch_count == 1 ? "" : "es",
                  row.usage.seconds * 1000.0);
    }
  }
  return total;
}

/// `saintdroid batch`: parses every package up front, analyzes them through
/// the fault-isolated suite harness (one mined database shared by every
/// worker), prints one line per app in input order. An app whose analysis
/// fails is reported as a structured FAILED row — it never sinks the batch.
/// With `--journal` every finished row is appended to a crash-safe JSONL
/// file; `--resume` skips apps already journaled. Returns 1 when any app
/// has mismatches or failed, 2 on package parse failure.
int run_batch(const std::vector<std::string>& paths, int jobs,
              const std::string& db_path, const std::string& journal_path,
              bool resume, int shard_index, int shard_count,
              const std::string& model_cache_dir,
              const std::string& incr_cache_dir) {
  const auto& repo = sd::FrameworkRepository::standard();
  // Database precedence: an explicit --db file wins; otherwise the model
  // cache serves (or mines once and stores) it; otherwise mine per run.
  std::optional<sd::ModelCache> cache;
  if (!model_cache_dir.empty()) cache.emplace(model_cache_dir);
  std::shared_ptr<const sd::ApiDatabase> db;
  if (!db_path.empty())
    db = std::make_shared<const sd::ApiDatabase>(
        sd::ApiDatabase::parse(read_file(db_path)));
  else if (cache)
    db = cache->api_database(repo, jobs);
  else
    db = std::make_shared<const sd::ApiDatabase>(sd::ApiDatabase::mine(repo));

  std::vector<sd::BenchApp> full_list;
  full_list.reserve(paths.size());
  for (const auto& p : paths) {
    sd::BenchApp app;
    app.apk = sd::Apk::parse(read_file(p));
    full_list.push_back(std::move(app));
  }

  // The corpus fingerprint covers the *full* app list — every shard of one
  // run computes the same id, so merge-journals can refuse shards cut from
  // different lists. The shard then analyzes only its interleaved slice.
  const std::string corpus_id = sd::corpus_fingerprint(full_list);
  const std::vector<sd::BenchApp> apps =
      shard_count > 1 ? sd::shard_slice(full_list, shard_index, shard_count)
                      : std::move(full_list);

  if (jobs <= 0) jobs = static_cast<int>(sd::ThreadPool::default_workers());

  sd::SuiteRunOptions options;
  options.jobs = jobs;
  options.journal_path = journal_path;
  options.resume = resume;
  options.corpus_id = corpus_id;
  options.shard_index = shard_index;
  options.shard_count = shard_count;
  options.model_cache_dir = model_cache_dir;
  options.incr_cache_dir = incr_cache_dir;
  options.repository = &repo;
  // Pre-build the shared framework substrate for every level the batch
  // targets, once, before the worker fan-out. A level whose build fails
  // here is skipped: the analyses against it retry and attribute the
  // failure to their own rows.
  options.warmup = [&repo, &apps] {
    std::vector<char> warmed(sd::kMaxApiLevel + 1, 0);
    for (const auto& app : apps) {
      const int level =
          sd::FrameworkRepository::clamp_level(app.apk.manifest.target_sdk);
      if (warmed[static_cast<std::size_t>(level)]) continue;
      warmed[static_cast<std::size_t>(level)] = 1;
      try {
        (void)repo.substrate(level);
      } catch (const std::exception&) {
      }
    }
  };

  // Graceful shutdown: SIGINT/SIGTERM stops starting new apps; in-flight
  // apps finish and journal (the journal stays sealed and resumable), the
  // skipped remainder is reported, and the exit code is distinct.
  sd::install_shutdown_handlers();
  options.stop = [] { return sd::shutdown_requested(); };

  // One incremental fact cache shared by every worker facade (stores are
  // rename-atomic, so concurrent workers — and concurrent shard processes
  // pointed at one directory — race benignly).
  sd::SaintDroidOptions tool_options;
  if (!incr_cache_dir.empty())
    tool_options.incr_cache = std::make_shared<const sd::IncrCache>(incr_cache_dir);

  const sd::Stopwatch watch;
  const sd::SuiteResult suite = sd::run_suite_parallel(
      [&] { return std::make_unique<sd::SaintDroid>(repo, db, tool_options); },
      apps, options);
  const double elapsed = watch.seconds();

  const std::uint64_t total = print_suite_rows(suite);
  if (shard_count > 1)
    std::printf("shard %d/%d (corpus %s): ", shard_index, shard_count,
                corpus_id.c_str());
  std::printf("%zu apps, %llu mismatches, %d failures, %d incomplete, "
              "%d jobs, %.2fs (%.1f apps/sec, %llu framework retr%s)\n",
              apps.size(), static_cast<unsigned long long>(total),
              suite.failures, suite.incomplete, jobs, elapsed,
              elapsed > 0 ? apps.size() / elapsed : 0.0,
              static_cast<unsigned long long>(suite.framework_retries),
              suite.framework_retries == 1 ? "y" : "ies");
  if (suite.incremental.any())
    std::printf("incremental: %llu attempted, %llu hits, %llu dirty classes, "
                "%llu fallbacks\n",
                static_cast<unsigned long long>(suite.incremental.attempted),
                static_cast<unsigned long long>(suite.incremental.hits),
                static_cast<unsigned long long>(
                    suite.incremental.dirty_classes),
                static_cast<unsigned long long>(suite.incremental.fallbacks));
  if (sd::shutdown_requested()) {
    std::fprintf(stderr,
                 "batch: interrupted by signal %d — %zu app%s skipped, "
                 "journal sealed%s\n",
                 sd::shutdown_signal(), suite.skipped_rows,
                 suite.skipped_rows == 1 ? "" : "s",
                 journal_path.empty() ? "" : " (rerun with --resume)");
    return sd::kShutdownExitCode;
  }
  return total == 0 && suite.failures == 0 ? 0 : 1;
}

/// `saintdroid coordinate`: publishes the work queue for the given
/// packages into <workdir>, supervises the lease lifecycle until every
/// lease is done (reclaiming expired claims), then merges the worker
/// journals and prints the collected result. `--init-only` stops after
/// publish — the mode for driving supervision from elsewhere. Returns 1 on
/// mismatches/failures/conflicts, 2 on configuration errors, 3 on timeout.
int run_coordinate(const std::string& workdir,
                   const std::vector<std::string>& paths, int lease_size,
                   std::uint64_t ttl_seconds, double timeout_seconds,
                   bool init_only) {
  std::vector<sd::BenchApp> apps;
  apps.reserve(paths.size());
  for (const auto& p : paths) {
    sd::BenchApp app;
    app.apk = sd::Apk::parse(read_file(p));
    apps.push_back(std::move(app));
  }

  sd::CoordinatorOptions plan_options;
  plan_options.lease_size = lease_size;
  const sd::WorkQueue queue = sd::plan_work_queue(apps, paths, plan_options);
  const sd::WorkDir dir{workdir};
  dir.publish(queue, sd::WorkDir::steady_seconds());
  std::printf("coordinate: published %zu apps in %zu leases (corpus %s) "
              "-> %s\n",
              queue.items.size(), queue.leases.size(), queue.corpus.c_str(),
              dir.queue_path().c_str());
  if (init_only) return 0;

  sd::SuperviseOptions supervise_options;
  supervise_options.ttl_seconds = ttl_seconds;
  supervise_options.timeout_seconds = timeout_seconds;
  const sd::SuperviseOutcome outcome = sd::supervise(dir, supervise_options);
  if (!outcome.finished) {
    const sd::WorkDirStatus status = dir.status();
    std::fprintf(stderr,
                 "coordinate: timed out after %.1fs (%d open, %d claimed, "
                 "%d done)\n",
                 timeout_seconds, status.open, status.claimed, status.done);
    return 3;
  }

  const sd::CollectResult collected = sd::collect(dir);
  const std::uint64_t total = print_suite_rows(collected.suite);
  for (const auto& conflict : collected.merge.conflicts)
    std::fprintf(stderr, "coordinate: divergent rows for app %s\n",
                 conflict.app.c_str());
  std::string workers;
  for (const auto& count : collected.suite.worker_lease_counts) {
    if (!workers.empty()) workers += ", ";
    workers += count.worker + "=" + std::to_string(count.leases);
  }
  std::printf("coordinate: %zu apps, %llu mismatches, %d failures, %zu "
              "leases (%zu reclaimed, %d by supervisor), %zu duplicate "
              "row%s, workers [%s] -> %s\n",
              collected.suite.rows.size(),
              static_cast<unsigned long long>(total),
              collected.suite.failures, collected.suite.leases_issued,
              collected.suite.leases_reclaimed, outcome.reclaimed,
              collected.merge.duplicates,
              collected.merge.duplicates == 1 ? "" : "s", workers.c_str(),
              dir.merged_journal_path().c_str());
  return total == 0 && collected.suite.failures == 0 &&
                 collected.merge.clean()
             ? 0
             : 1;
}

/// `saintdroid work`: one worker agent. Claims leases from <workdir> until
/// the queue is drained, analyzing each lease through the same journaled
/// suite path as `batch` (shared mined database, per-app fault isolation)
/// and appending rows to journal-<worker>.jsonl. Safe to run many of these
/// concurrently against one workdir — on one host or many.
int run_work(const std::string& workdir, int jobs, std::string worker,
             const std::string& db_path, const std::string& model_cache_dir,
             std::uint64_t ttl_seconds, int max_leases,
             double queue_wait_seconds) {
  const auto& repo = sd::FrameworkRepository::standard();
  if (jobs <= 0) jobs = static_cast<int>(sd::ThreadPool::default_workers());
  if (worker.empty()) worker = "w" + std::to_string(getpid());

  std::optional<sd::ModelCache> cache;
  if (!model_cache_dir.empty()) cache.emplace(model_cache_dir);
  std::shared_ptr<const sd::ApiDatabase> db;
  if (!db_path.empty())
    db = std::make_shared<const sd::ApiDatabase>(
        sd::ApiDatabase::parse(read_file(db_path)));
  else if (cache)
    db = cache->api_database(repo, jobs);
  else
    db = std::make_shared<const sd::ApiDatabase>(sd::ApiDatabase::mine(repo));

  sd::AgentOptions options;
  options.worker = std::move(worker);
  options.jobs = jobs;
  options.ttl_seconds = ttl_seconds;
  options.queue_wait_seconds = queue_wait_seconds;
  options.max_leases = max_leases;
  options.resolve = [](const sd::WorkItem& item) {
    if (item.path.empty())
      throw sd::Error("work: queue item " + item.name +
                      " carries no package path");
    sd::BenchApp app;
    app.apk = sd::Apk::parse(read_file(item.path));
    return app;
  };
  options.factory = [&repo, &db] {
    return std::make_unique<sd::SaintDroid>(repo, db);
  };
  options.model_cache_dir = model_cache_dir;
  options.repository = &repo;
  options.warmup = [&repo](std::span<const sd::BenchApp> slice) {
    std::vector<char> warmed(sd::kMaxApiLevel + 1, 0);
    for (const auto& app : slice) {
      const int level =
          sd::FrameworkRepository::clamp_level(app.apk.manifest.target_sdk);
      if (warmed[static_cast<std::size_t>(level)]) continue;
      warmed[static_cast<std::size_t>(level)] = 1;
      try {
        (void)repo.substrate(level);
      } catch (const std::exception&) {
      }
    }
  };

  // Graceful shutdown: stop claiming, finish (or journal-and-abandon) the
  // current lease, and exit distinctly; the unmarked claim is reclaimed by
  // TTL or resumed by a restarted worker against the sealed journal.
  sd::install_shutdown_handlers();
  options.interrupted = [] { return sd::shutdown_requested(); };

  const sd::WorkDir dir{workdir};
  const sd::AgentResult result = run_agent(dir, options);
  std::printf("work %s: %d lease%s completed (%d lost, %d reclaimed for "
              "others), %zu apps analyzed, %zu resumed, %d jobs\n",
              options.worker.c_str(), result.leases_completed,
              result.leases_completed == 1 ? "" : "s", result.leases_lost,
              result.leases_reclaimed, result.apps_analyzed,
              result.rows_resumed, result.jobs);
  if (result.interrupted) {
    std::fprintf(stderr, "work %s: interrupted by signal %d — journal "
                 "sealed, claim left for TTL reclaim\n",
                 options.worker.c_str(), sd::shutdown_signal());
    return sd::kShutdownExitCode;
  }
  return 0;
}

/// `saintdroid serve`: the long-lived vetting daemon. Pays every startup
/// cost once (framework, substrate, mined database via the state
/// directory's model cache) and then vets packages on demand over
/// line-delimited JSON — on <statedir>/serve.sock and, with `--stdio`,
/// stdin/stdout (EOF drains and exits 0, the one-shot piping mode).
/// Returns kShutdownExitCode after a graceful SIGINT/SIGTERM. All
/// human-facing chatter goes to stderr; stdout is a response channel.
int run_serve(const std::string& statedir, int jobs, std::size_t queue,
              double deadline, bool stdio, bool no_socket,
              const std::string& incr_cache_dir) {
  sd::install_shutdown_handlers();
  sd::ServeOptions options;
  options.jobs = jobs;
  options.queue_capacity = queue;
  options.budget.deadline_seconds = deadline;
  options.incr_cache_dir = incr_cache_dir;
  const sd::Stopwatch watch;
  sd::VetService service{statedir, options};
  const sd::ServeStats warm = service.stats();
  std::fprintf(stderr,
               "serve: ready in %.2fs (%d jobs, queue %zu, model %s, "
               "%llu replayed) on %s%s\n",
               watch.seconds(), service.jobs(), service.queue_capacity(),
               warm.database_from_cache ? "cached" : "mined",
               static_cast<unsigned long long>(warm.replayed),
               no_socket ? "" : service.paths().socket_path().c_str(),
               stdio ? (no_socket ? "stdio" : " + stdio") : "");

  sd::DaemonOptions daemon;
  daemon.stdio = stdio;
  daemon.socket = !no_socket;
  daemon.interrupted = [] { return sd::shutdown_requested(); };
  const int code = sd::run_serve_daemon(service, daemon);

  const sd::ServeStats stats = service.stats();
  std::fprintf(stderr,
               "serve: exiting (%s) — %llu received, %llu accepted, "
               "%llu completed, %llu cache hits, %llu shed, %llu rejected, "
               "%llu malformed\n",
               code == sd::kShutdownExitCode ? "signal" : "eof",
               static_cast<unsigned long long>(stats.received),
               static_cast<unsigned long long>(stats.accepted),
               static_cast<unsigned long long>(stats.completed),
               static_cast<unsigned long long>(stats.cache_hits),
               static_cast<unsigned long long>(stats.shed),
               static_cast<unsigned long long>(stats.rejected),
               static_cast<unsigned long long>(stats.malformed));
  return code;
}

/// `saintdroid submit`: client half of `serve`. One request per package
/// over <statedir>/serve.sock; prints the raw response lines. Returns 0
/// when every response is `done`, 1 when any is `failed`/`rejected` (or
/// unparseable), 2 when the daemon cannot be reached.
int run_submit(const std::string& statedir,
               const std::vector<std::string>& paths, double deadline,
               double wait_seconds) {
  std::vector<std::string> lines;
  lines.reserve(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    sd::ServeRequest request;
    request.id = "r" + std::to_string(i + 1);
    request.apk_path = paths[i];
    request.deadline_seconds = deadline;
    lines.push_back(sd::serve_request_line(request));
  }
  const std::vector<std::string> responses = sd::submit_over_socket(
      statedir + "/serve.sock", lines, wait_seconds);
  bool all_done = true;
  for (const std::string& line : responses) {
    std::printf("%s\n", line.c_str());
    const auto response = sd::parse_serve_response(line);
    if (!response.has_value() ||
        response->status != sd::ServeStatus::kDone)
      all_done = false;
  }
  return all_done ? 0 : 1;
}

/// `saintdroid merge-journals`: merges per-shard journals into one
/// canonical journal — one row per app, sorted by app name, behind a
/// "merged" header. Identical duplicate rows dedup silently; divergent
/// duplicates are printed (both rows) and make the exit code 1; journals
/// from different corpora/schemas/shard layouts are refused (exit 2).
/// `--stats` additionally prints per-input row/duplicate/resumed counts
/// and the per-shard canonical-row spread.
int run_merge_journals(const std::string& out_path,
                       const std::vector<std::string>& inputs, bool stats) {
  const sd::JournalMerge merge = sd::merge_journals(inputs);
  sd::write_journal(out_path, merge.header, merge.rows);
  if (stats) {
    std::printf("%-40s %-6s %6s %6s %8s %9s %9s %9s\n", "input", "shard",
                "rows", "dups", "resumed", "conflicts", "incompl",
                "canonical");
    std::size_t min_canonical = merge.rows.size();
    std::size_t max_canonical = 0;
    for (const auto& input : merge.inputs) {
      std::string shard = "-";
      if (input.header.has_value())
        shard = input.header->merged()
                    ? "merged"
                    : std::to_string(input.header->shard_index) + "/" +
                          std::to_string(input.header->shard_count);
      std::printf("%-40s %-6s %6zu %6zu %8zu %9zu %9zu %9zu\n",
                  input.path.c_str(), shard.c_str(), input.rows,
                  input.duplicates, input.resumed, input.conflicts,
                  input.incomplete, input.canonical);
      min_canonical = std::min(min_canonical, input.canonical);
      max_canonical = std::max(max_canonical, input.canonical);
    }
    std::printf("canonical-row spread: min %zu, max %zu per input "
                "(skew %.2fx)\n",
                min_canonical, max_canonical,
                min_canonical > 0 ? static_cast<double>(max_canonical) /
                                        static_cast<double>(min_canonical)
                                  : 0.0);
  }
  for (const auto& conflict : merge.conflicts) {
    std::fprintf(stderr,
                 "merge-journals: divergent rows for app %s\n"
                 "  kept:      %s\n"
                 "  discarded: %s\n",
                 conflict.app.c_str(),
                 sd::canonical_row_bytes(conflict.kept).c_str(),
                 sd::canonical_row_bytes(conflict.discarded).c_str());
  }
  std::printf("merged %zu journals -> %s: %zu apps, %zu duplicate row%s "
              "deduped, %zu conflict%s\n",
              inputs.size(), out_path.c_str(), merge.rows.size(),
              merge.duplicates, merge.duplicates == 1 ? "" : "s",
              merge.conflicts.size(), merge.conflicts.size() == 1 ? "" : "s");
  return merge.clean() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // `--help` anywhere wins: print the usage text to stdout and succeed.
  // The doc-drift lint in ci/verify.sh runs exactly this invocation.
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--help") == 0) {
      print_usage(stdout);
      return 0;
    }
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const std::string path = argv[2];

  if (command == "batch") {
    std::vector<std::string> paths;
    int jobs = 0;  // 0 -> hardware concurrency
    std::string db_path;
    std::string journal_path;
    std::string model_cache_dir;
    std::string incr_cache_dir;
    bool resume = false;
    int shard_index = 0;
    int shard_count = 1;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
        jobs = std::atoi(argv[++i]);
      else if (std::strcmp(argv[i], "--db") == 0 && i + 1 < argc)
        db_path = argv[++i];
      else if (std::strcmp(argv[i], "--journal") == 0 && i + 1 < argc)
        journal_path = argv[++i];
      else if (std::strcmp(argv[i], "--resume") == 0)
        resume = true;
      else if (std::strcmp(argv[i], "--model-cache") == 0 && i + 1 < argc)
        model_cache_dir = argv[++i];
      else if (std::strcmp(argv[i], "--incr-cache") == 0 && i + 1 < argc)
        incr_cache_dir = argv[++i];
      else if (std::strcmp(argv[i], "--shard") == 0 && i + 1 < argc) {
        if (!parse_shard_spec(argv[++i], shard_index, shard_count))
          return usage();
      } else if (argv[i][0] == '-')
        return usage();
      else
        paths.emplace_back(argv[i]);
    }
    if (paths.empty()) return usage();
    if (resume && journal_path.empty()) return usage();
    try {
      return run_batch(paths, jobs, db_path, journal_path, resume,
                       shard_index, shard_count, model_cache_dir,
                       incr_cache_dir);
    } catch (const sd::Error& e) {
      std::fprintf(stderr, "saintdroid: %s\n", e.what());
      return 2;
    }
  }

  if (command == "merge-journals") {
    // The first non-flag argument is the output journal; every further
    // one is an input.
    bool stats = false;
    std::string out_path;
    std::vector<std::string> inputs;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--stats") == 0)
        stats = true;
      else if (argv[i][0] == '-')
        return usage();
      else if (out_path.empty())
        out_path = argv[i];
      else
        inputs.emplace_back(argv[i]);
    }
    if (out_path.empty() || inputs.empty()) return usage();
    try {
      return run_merge_journals(out_path, inputs, stats);
    } catch (const sd::Error& e) {
      std::fprintf(stderr, "saintdroid: %s\n", e.what());
      return 2;
    }
  }

  if (command == "coordinate") {
    std::string workdir;
    std::vector<std::string> paths;
    int lease_size = 0;
    std::uint64_t ttl = 60;
    double timeout = 0;
    bool init_only = false;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--lease-size") == 0 && i + 1 < argc)
        lease_size = std::atoi(argv[++i]);
      else if (std::strcmp(argv[i], "--ttl") == 0 && i + 1 < argc)
        ttl = static_cast<std::uint64_t>(std::atoll(argv[++i]));
      else if (std::strcmp(argv[i], "--timeout") == 0 && i + 1 < argc)
        timeout = std::atof(argv[++i]);
      else if (std::strcmp(argv[i], "--init-only") == 0)
        init_only = true;
      else if (argv[i][0] == '-')
        return usage();
      else if (workdir.empty())
        workdir = argv[i];
      else
        paths.emplace_back(argv[i]);
    }
    if (workdir.empty() || paths.empty()) return usage();
    try {
      return run_coordinate(workdir, paths, lease_size, ttl, timeout,
                            init_only);
    } catch (const sd::Error& e) {
      std::fprintf(stderr, "saintdroid: %s\n", e.what());
      return 2;
    }
  }

  if (command == "serve") {
    std::string statedir;
    std::string incr_cache_dir;
    int jobs = 0;  // 0 -> hardware concurrency
    std::size_t queue = 0;  // 0 -> 4 * jobs
    double deadline = 0.0;
    bool stdio = false;
    bool no_socket = false;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
        jobs = std::atoi(argv[++i]);
      else if (std::strcmp(argv[i], "--queue") == 0 && i + 1 < argc)
        queue = static_cast<std::size_t>(std::atoll(argv[++i]));
      else if (std::strcmp(argv[i], "--deadline") == 0 && i + 1 < argc)
        deadline = std::atof(argv[++i]);
      else if (std::strcmp(argv[i], "--stdio") == 0)
        stdio = true;
      else if (std::strcmp(argv[i], "--no-socket") == 0)
        no_socket = true;
      else if (std::strcmp(argv[i], "--incr-cache") == 0 && i + 1 < argc)
        incr_cache_dir = argv[++i];
      else if (argv[i][0] == '-')
        return usage();
      else if (statedir.empty())
        statedir = argv[i];
      else
        return usage();
    }
    if (statedir.empty()) return usage();
    if (no_socket && !stdio) return usage();  // need at least one transport
    try {
      return run_serve(statedir, jobs, queue, deadline, stdio, no_socket,
                       incr_cache_dir);
    } catch (const sd::Error& e) {
      std::fprintf(stderr, "saintdroid: %s\n", e.what());
      return 2;
    }
  }

  if (command == "submit") {
    std::string statedir;
    std::vector<std::string> paths;
    double deadline = 0.0;
    double wait = 10.0;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--deadline") == 0 && i + 1 < argc)
        deadline = std::atof(argv[++i]);
      else if (std::strcmp(argv[i], "--wait") == 0 && i + 1 < argc)
        wait = std::atof(argv[++i]);
      else if (argv[i][0] == '-')
        return usage();
      else if (statedir.empty())
        statedir = argv[i];
      else
        paths.emplace_back(argv[i]);
    }
    if (statedir.empty() || paths.empty()) return usage();
    try {
      return run_submit(statedir, paths, deadline, wait);
    } catch (const sd::Error& e) {
      std::fprintf(stderr, "saintdroid: %s\n", e.what());
      return 2;
    }
  }

  if (command == "work") {
    std::string workdir;
    std::string worker;
    std::string db_path;
    std::string model_cache_dir;
    int jobs = 0;  // 0 -> hardware concurrency
    std::uint64_t ttl = 60;
    int max_leases = 0;
    double wait = 10.0;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
        jobs = std::atoi(argv[++i]);
      else if (std::strcmp(argv[i], "--worker") == 0 && i + 1 < argc)
        worker = argv[++i];
      else if (std::strcmp(argv[i], "--db") == 0 && i + 1 < argc)
        db_path = argv[++i];
      else if (std::strcmp(argv[i], "--model-cache") == 0 && i + 1 < argc)
        model_cache_dir = argv[++i];
      else if (std::strcmp(argv[i], "--ttl") == 0 && i + 1 < argc)
        ttl = static_cast<std::uint64_t>(std::atoll(argv[++i]));
      else if (std::strcmp(argv[i], "--max-leases") == 0 && i + 1 < argc)
        max_leases = std::atoi(argv[++i]);
      else if (std::strcmp(argv[i], "--wait") == 0 && i + 1 < argc)
        wait = std::atof(argv[++i]);
      else if (argv[i][0] == '-')
        return usage();
      else if (workdir.empty())
        workdir = argv[i];
      else
        return usage();
    }
    if (workdir.empty()) return usage();
    try {
      return run_work(workdir, jobs, worker, db_path, model_cache_dir, ttl,
                      max_leases, wait);
    } catch (const sd::Error& e) {
      std::fprintf(stderr, "saintdroid: %s\n", e.what());
      return 2;
    }
  }

  bool json = false;
  bool suggest = false;
  std::vector<int> levels;
  std::string db_path;
  std::string model_cache_dir;
  std::string incr_cache_dir;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0)
      json = true;
    else if (std::strcmp(argv[i], "--suggest") == 0)
      suggest = true;
    else if (std::strcmp(argv[i], "--levels") == 0 && i + 1 < argc)
      levels = parse_levels(argv[++i]);
    else if (std::strcmp(argv[i], "--db") == 0 && i + 1 < argc)
      db_path = argv[++i];
    else if (std::strcmp(argv[i], "--model-cache") == 0 && i + 1 < argc)
      model_cache_dir = argv[++i];
    else if (std::strcmp(argv[i], "--incr-cache") == 0 && i + 1 < argc)
      incr_cache_dir = argv[++i];
    else
      return usage();
  }

  try {
    if (command == "mine") {
      const sd::ApiDatabase db =
          sd::ApiDatabase::mine(sd::FrameworkRepository::standard());
      const auto bytes = db.serialize();
      std::ofstream out{path, std::ios::binary};
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
      if (!out) throw sd::Error("cannot write " + path);
      std::printf("mined %zu methods, %zu callbacks, %zu permission "
                  "mappings -> %s (%zu bytes)\n",
                  db.method_count(), db.callback_count(),
                  db.permission_mapping_count(), path.c_str(), bytes.size());
      return 0;
    }

    const auto bytes = read_file(path);
    const sd::Apk apk = sd::Apk::parse(bytes);

    if (command == "disasm") {
      std::printf("apk %s (package %s, sdk %d..%d target %d)\n",
                  apk.name.c_str(), apk.manifest.package.c_str(),
                  apk.manifest.min_sdk,
                  apk.manifest.max_sdk ? apk.manifest.max_sdk : 29,
                  apk.manifest.target_sdk);
      for (std::size_t d = 0; d < apk.dexes.size(); ++d) {
        std::printf("-- dex %zu --\n", d);
        std::fputs(sd::disassemble(apk.dexes[d]).c_str(), stdout);
      }
      return 0;
    }
    if (command != "analyze") return usage();

    const auto& repo = sd::FrameworkRepository::standard();
    // Same precedence as batch: --db wins, then the model cache, then a
    // fresh mining pass. The cache also serves the substrate tables.
    std::optional<sd::ModelCache> cache;
    if (!model_cache_dir.empty()) {
      cache.emplace(model_cache_dir);
      cache->attach_substrate_cache(repo);
    }
    std::shared_ptr<const sd::ApiDatabase> db;
    if (!db_path.empty())
      db = std::make_shared<const sd::ApiDatabase>(
          sd::ApiDatabase::parse(read_file(db_path)));
    else if (cache)
      db = cache->api_database(repo);
    else
      db = std::make_shared<const sd::ApiDatabase>(sd::ApiDatabase::mine(repo));
    sd::SaintDroidOptions tool_options;
    if (!incr_cache_dir.empty())
      tool_options.incr_cache =
          std::make_shared<const sd::IncrCache>(incr_cache_dir);
    sd::SaintDroid tool{repo, std::move(db), tool_options};
    const sd::AnalysisResult result =
        levels.empty() ? tool.analyze(apk)
                       : tool.analyze_versions(apk, levels);

    if (json)
      std::printf("%s\n", sd::to_json(result, apk.name).c_str());
    else
      std::fputs(result.to_text(apk.name).c_str(), stdout);

    if (suggest) {
      const auto repairs =
          sd::suggest_repairs(apk.manifest, result.mismatches);
      if (json)
        std::printf("%s\n", sd::to_json(repairs).c_str());
      else
        std::fputs(sd::render_repairs(repairs).c_str(), stdout);
    }
    return result.mismatches.empty() ? 0 : 1;
  } catch (const sd::Error& e) {
    std::fprintf(stderr, "saintdroid: %s\n", e.what());
    return 2;
  }
}
