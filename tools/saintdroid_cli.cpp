// saintdroid — command-line front end.
//
//   saintdroid analyze <apk-file> [--json] [--suggest] [--levels a,b,c]
//                                 [--db <database-file>]
//   saintdroid disasm  <apk-file>
//   saintdroid mine    <output-database-file>
//
// Consumes packages produced by apkgen (or any code using
// Apk::serialize()), runs the analysis, and prints a text or JSON report,
// optionally with repair suggestions and against an explicit framework
// version set. `mine` persists the ARM database once so later `analyze
// --db` runs skip the mining pass (§III-B's reusable model).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "adf/repository.hpp"
#include "core/advisor.hpp"
#include "core/json.hpp"
#include "core/saintdroid.hpp"
#include "dex/disasm.hpp"
#include "support/errors.hpp"

namespace sd = saintdroid;

namespace {

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw sd::Error("cannot open " + path);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

std::vector<int> parse_levels(const std::string& arg) {
  std::vector<int> levels;
  std::size_t pos = 0;
  while (pos < arg.size()) {
    const std::size_t comma = arg.find(',', pos);
    const std::string token =
        arg.substr(pos, comma == std::string::npos ? comma : comma - pos);
    levels.push_back(std::stoi(token));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return levels;
}

int usage() {
  std::fprintf(stderr,
               "usage: saintdroid analyze <apk> [--json] [--suggest] "
               "[--levels a,b,c] [--db <file>]\n"
               "       saintdroid disasm <apk>\n"
               "       saintdroid mine <output-db-file>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const std::string path = argv[2];

  bool json = false;
  bool suggest = false;
  std::vector<int> levels;
  std::string db_path;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0)
      json = true;
    else if (std::strcmp(argv[i], "--suggest") == 0)
      suggest = true;
    else if (std::strcmp(argv[i], "--levels") == 0 && i + 1 < argc)
      levels = parse_levels(argv[++i]);
    else if (std::strcmp(argv[i], "--db") == 0 && i + 1 < argc)
      db_path = argv[++i];
    else
      return usage();
  }

  try {
    if (command == "mine") {
      const sd::ApiDatabase db =
          sd::ApiDatabase::mine(sd::FrameworkRepository::standard());
      const auto bytes = db.serialize();
      std::ofstream out{path, std::ios::binary};
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
      if (!out) throw sd::Error("cannot write " + path);
      std::printf("mined %zu methods, %zu callbacks, %zu permission "
                  "mappings -> %s (%zu bytes)\n",
                  db.method_count(), db.callback_count(),
                  db.permission_mapping_count(), path.c_str(), bytes.size());
      return 0;
    }

    const auto bytes = read_file(path);
    const sd::Apk apk = sd::Apk::parse(bytes);

    if (command == "disasm") {
      std::printf("apk %s (package %s, sdk %d..%d target %d)\n",
                  apk.name.c_str(), apk.manifest.package.c_str(),
                  apk.manifest.min_sdk,
                  apk.manifest.max_sdk ? apk.manifest.max_sdk : 29,
                  apk.manifest.target_sdk);
      for (std::size_t d = 0; d < apk.dexes.size(); ++d) {
        std::printf("-- dex %zu --\n", d);
        std::fputs(sd::disassemble(apk.dexes[d]).c_str(), stdout);
      }
      return 0;
    }
    if (command != "analyze") return usage();

    const auto& repo = sd::FrameworkRepository::standard();
    sd::SaintDroid tool =
        db_path.empty()
            ? sd::SaintDroid{repo}
            : sd::SaintDroid{repo, sd::ApiDatabase::parse(read_file(db_path))};
    const sd::AnalysisResult result =
        levels.empty() ? tool.analyze(apk)
                       : tool.analyze_versions(apk, levels);

    if (json)
      std::printf("%s\n", sd::to_json(result, apk.name).c_str());
    else
      std::fputs(result.to_text(apk.name).c_str(), stdout);

    if (suggest) {
      const auto repairs =
          sd::suggest_repairs(apk.manifest, result.mismatches);
      if (json)
        std::printf("%s\n", sd::to_json(repairs).c_str());
      else
        std::fputs(sd::render_repairs(repairs).c_str(), stdout);
    }
    return result.mismatches.empty() ? 0 : 1;
  } catch (const sd::Error& e) {
    std::fprintf(stderr, "saintdroid: %s\n", e.what());
    return 2;
  }
}
